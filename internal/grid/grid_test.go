package grid

import (
	"math/rand"
	"testing"
	"testing/quick"

	"traj2hash/internal/geo"
)

func mkGrid(t *testing.T, nx, ny int, cell float64) *Grid {
	t.Helper()
	g, err := New(geo.Point{}, geo.Point{X: float64(nx-1) * cell, Y: float64(ny-1) * cell}, cell)
	if err != nil {
		t.Fatal(err)
	}
	if g.NX != nx || g.NY != ny {
		t.Fatalf("grid %dx%d, want %dx%d", g.NX, g.NY, nx, ny)
	}
	return g
}

func TestNewGridErrors(t *testing.T) {
	if _, err := New(geo.Point{}, geo.Point{X: 1, Y: 1}, 0); err == nil {
		t.Error("zero cell size accepted")
	}
	if _, err := New(geo.Point{X: 2}, geo.Point{X: 1, Y: 1}, 1); err == nil {
		t.Error("inverted region accepted")
	}
}

func TestCoordAndID(t *testing.T) {
	g := mkGrid(t, 10, 5, 50)
	x, y := g.Coord(geo.Point{X: 120, Y: 70})
	if x != 2 || y != 1 {
		t.Errorf("Coord = (%d,%d)", x, y)
	}
	id := g.ID(geo.Point{X: 120, Y: 70})
	if id != 1*10+2 {
		t.Errorf("ID = %d", id)
	}
	cx, cy := g.CoordOf(id)
	if cx != 2 || cy != 1 {
		t.Errorf("CoordOf = (%d,%d)", cx, cy)
	}
}

func TestCoordClamping(t *testing.T) {
	g := mkGrid(t, 10, 5, 50)
	// Out-of-region points clamp to the border cells.
	if x, y := g.Coord(geo.Point{X: -100, Y: -100}); x != 0 || y != 0 {
		t.Errorf("clamp low = (%d,%d)", x, y)
	}
	if x, y := g.Coord(geo.Point{X: 1e9, Y: 1e9}); x != 9 || y != 4 {
		t.Errorf("clamp high = (%d,%d)", x, y)
	}
}

func TestIDRoundTrip(t *testing.T) {
	g := mkGrid(t, 17, 9, 25)
	f := func(xi, yi uint8) bool {
		x := int(xi) % g.NX
		y := int(yi) % g.NY
		rx, ry := g.CoordOf(y*g.NX + x)
		return rx == x && ry == y
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCenterInsideCell(t *testing.T) {
	g := mkGrid(t, 10, 10, 50)
	for _, c := range []struct{ x, y int }{{0, 0}, {3, 7}, {9, 9}} {
		p := g.Center(c.x, c.y)
		x, y := g.Coord(p)
		if x != c.x || y != c.y {
			t.Errorf("Center(%d,%d) maps to (%d,%d)", c.x, c.y, x, y)
		}
	}
}

func TestFromTrajectoriesCovers(t *testing.T) {
	ts := []geo.Trajectory{
		{{X: 0, Y: 0}, {X: 100, Y: 30}},
		{{X: -50, Y: 200}},
	}
	g, err := FromTrajectories(ts, 10)
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range ts {
		for _, p := range tr {
			// Every point lands in bounds without clamping being necessary:
			// recompute without clamp.
			x := int((p.X - g.MinX) / g.CellSize)
			y := int((p.Y - g.MinY) / g.CellSize)
			if x < 0 || x >= g.NX || y < 0 || y >= g.NY {
				t.Errorf("point %v outside grid", p)
			}
		}
	}
	if _, err := FromTrajectories(nil, 10); err == nil {
		t.Error("empty input accepted")
	}
	if _, err := FromTrajectories([]geo.Trajectory{{}}, 10); err == nil {
		t.Error("all-empty input accepted")
	}
}

func TestGridTrajectory(t *testing.T) {
	g := mkGrid(t, 10, 10, 50)
	tr := geo.Trajectory{{X: 10, Y: 10}, {X: 20, Y: 20}, {X: 60, Y: 10}}
	gt := g.GridTrajectory(tr)
	if len(gt) != 3 {
		t.Fatalf("len = %d", len(gt))
	}
	if gt[0] != gt[1] {
		t.Error("same-cell points got different ids")
	}
	if gt[1] == gt[2] {
		t.Error("different-cell points got same id")
	}
	ct := g.CompressedGridTrajectory(tr)
	if len(ct) != 2 {
		t.Errorf("compressed len = %d, want 2", len(ct))
	}
}

func TestKeyOf(t *testing.T) {
	if KeyOf([]int{1, 22, 333}) != "1,22,333" {
		t.Errorf("KeyOf = %q", KeyOf([]int{1, 22, 333}))
	}
	if KeyOf(nil) != "" {
		t.Errorf("KeyOf(nil) = %q", KeyOf(nil))
	}
	if KeyOf([]int{0}) != "0" {
		t.Errorf("KeyOf(0) = %q", KeyOf([]int{0}))
	}
	// Distinct sequences yield distinct keys.
	if KeyOf([]int{12, 3}) == KeyOf([]int{1, 23}) {
		t.Error("key collision")
	}
}

func TestDecomposedParamCount(t *testing.T) {
	g := mkGrid(t, 1100, 1100, 50)
	d := NewDecomposed(g, 64, rand.New(rand.NewSource(1)))
	// The Section IV-C claim: 2×1100 coordinate embeddings, not 1.21M.
	if d.ParamCount() != 64*2200 {
		t.Errorf("ParamCount = %d", d.ParamCount())
	}
	n2v := NewNode2Vec(mkGrid(t, 20, 20, 50), 64, rand.New(rand.NewSource(1)))
	if n2v.ParamCount() != 64*400 {
		t.Errorf("node2vec ParamCount = %d", n2v.ParamCount())
	}
}

func TestDecomposedSharedCoordinateSimilarity(t *testing.T) {
	// Even without training, neighbors sharing a coordinate embedding are
	// more similar than random far cells (the (3,5) vs (3,6) example of
	// Section IV-C).
	g := mkGrid(t, 30, 30, 50)
	d := NewDecomposed(g, 32, rand.New(rand.NewSource(2)))
	shared := d.CosineCellSim(3, 5, 3, 6) // share x=3
	far := d.CosineCellSim(3, 5, 20, 25)  // share nothing
	if shared <= far {
		t.Errorf("shared-coordinate similarity %v <= far similarity %v", shared, far)
	}
}

func TestDecomposedPretrainImprovesNeighborhood(t *testing.T) {
	g := mkGrid(t, 20, 20, 50)
	rng := rand.New(rand.NewSource(3))
	d := NewDecomposed(g, 16, rng)
	cfg := DefaultPretrainConfig(16)
	cfg.Epochs = 8
	d.Pretrain(cfg)
	// After pre-training, near cells should be more similar than far cells,
	// averaged over several probes.
	var near, far float64
	probes := [][2]int{{5, 5}, {10, 3}, {14, 14}, {2, 12}}
	for _, p := range probes {
		near += d.CosineCellSim(p[0], p[1], p[0]+1, p[1]+1)
		far += d.CosineCellSim(p[0], p[1], (p[0]+10)%20, (p[1]+10)%20)
	}
	if near <= far {
		t.Errorf("near similarity %v <= far similarity %v after pretraining", near, far)
	}
}

func TestDecomposedPretrainRawStable(t *testing.T) {
	g := mkGrid(t, 10, 10, 50)
	d := NewDecomposed(g, 8, rand.New(rand.NewSource(4)))
	cfg := DefaultPretrainConfig(8)
	cfg.Objective = Raw
	cfg.Epochs = 3
	loss := d.Pretrain(cfg)
	// Norm clamping keeps the raw objective bounded: |loss| <= |e_i||e_p| + |e_i||e_n| <= 8.
	if loss < -10 || loss > 10 {
		t.Errorf("raw NCE loss diverged: %v", loss)
	}
	for _, v := range d.Ex.Data {
		if v != v { // NaN check
			t.Fatal("NaN in embeddings")
		}
	}
}

func TestDecomposedEmbedCellsShape(t *testing.T) {
	g := mkGrid(t, 10, 10, 50)
	d := NewDecomposed(g, 8, rand.New(rand.NewSource(5)))
	emb := d.EmbedCells([]int{0, 15, 99})
	if emb.Rows != 3 || emb.Cols != 8 {
		t.Errorf("shape = %dx%d", emb.Rows, emb.Cols)
	}
	// Row 0 equals Ex[0] + Ey[0].
	want := make([]float64, 8)
	d.Vector(0, 0, want)
	for j := 0; j < 8; j++ {
		if emb.At(0, j) != want[j] {
			t.Errorf("EmbedCells row mismatch at %d", j)
		}
	}
}

func TestNode2VecWalkStaysOnGrid(t *testing.T) {
	g := mkGrid(t, 6, 6, 50)
	n := NewNode2Vec(g, 8, rand.New(rand.NewSource(6)))
	cfg := DefaultNode2VecConfig(8)
	cfg.WalkLen = 40
	rng := rand.New(rand.NewSource(7))
	w := n.walk(0, cfg, rng)
	if len(w) != 40 {
		t.Fatalf("walk len = %d", len(w))
	}
	for i, c := range w {
		if c < 0 || c >= g.Cells() {
			t.Fatalf("walk step %d off grid: %d", i, c)
		}
		if i > 0 {
			// Consecutive cells must be 8-adjacent.
			x1, y1 := g.CoordOf(w[i-1])
			x2, y2 := g.CoordOf(c)
			if absInt(x1-x2) > 1 || absInt(y1-y2) > 1 {
				t.Fatalf("walk jumped from (%d,%d) to (%d,%d)", x1, y1, x2, y2)
			}
		}
	}
}

func TestNode2VecBiasedWalk(t *testing.T) {
	g := mkGrid(t, 6, 6, 50)
	n := NewNode2Vec(g, 8, rand.New(rand.NewSource(8)))
	cfg := DefaultNode2VecConfig(8)
	cfg.P, cfg.Q = 4, 0.25 // exercise the biased branch
	cfg.WalkLen = 30
	w := n.walk(14, cfg, rand.New(rand.NewSource(9)))
	if len(w) != 30 {
		t.Fatalf("biased walk len = %d", len(w))
	}
}

func TestNode2VecTrainCapturesNeighborhood(t *testing.T) {
	g := mkGrid(t, 8, 8, 50)
	n := NewNode2Vec(g, 16, rand.New(rand.NewSource(10)))
	cfg := DefaultNode2VecConfig(16)
	cfg.NumWalks = 4
	cfg.WalkLen = 20
	cfg.Window = 4
	pairs := n.Train(cfg)
	if pairs == 0 {
		t.Fatal("no training pairs")
	}
	var near, far float64
	for _, c := range []int{9, 18, 36} {
		x, y := g.CoordOf(c)
		near += n.CosineCellSim(c, (y+1)*g.NX+x)
		far += n.CosineCellSim(c, ((y+4)%8)*g.NX+(x+4)%8)
	}
	if near <= far {
		t.Errorf("node2vec near %v <= far %v", near, far)
	}
}

func TestNode2VecEmbedCells(t *testing.T) {
	g := mkGrid(t, 5, 5, 50)
	n := NewNode2Vec(g, 4, rand.New(rand.NewSource(11)))
	emb := n.EmbedCells([]int{1, 2})
	if emb.Rows != 2 || emb.Cols != 4 {
		t.Errorf("shape = %dx%d", emb.Rows, emb.Cols)
	}
}

func TestDecomposedFasterThanNode2Vec(t *testing.T) {
	// The Figure 7 efficiency claim, scaled down: pre-training the
	// decomposed representation touches O(cells) samples per epoch while
	// node2vec consumes O(cells·walks·len·window) pairs.
	g := mkGrid(t, 12, 12, 50)
	dec := NewDecomposed(g, 8, rand.New(rand.NewSource(12)))
	dcfg := DefaultPretrainConfig(8)
	dcfg.Epochs = 1
	dec.Pretrain(dcfg)
	decSamples := g.Cells() * dcfg.Positives * dcfg.Negatives

	n2v := NewNode2Vec(g, 8, rand.New(rand.NewSource(13)))
	ncfg := DefaultNode2VecConfig(8)
	ncfg.NumWalks = 2
	ncfg.WalkLen = 10
	ncfg.Window = 3
	pairs := n2v.Train(ncfg)
	if pairs <= decSamples {
		t.Errorf("node2vec pairs %d should exceed decomposed samples %d", pairs, decSamples)
	}
}
