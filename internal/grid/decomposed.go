package grid

import (
	"math"
	"math/rand"

	"traj2hash/internal/nn"
)

// Objective selects the NCE loss variant for grid pre-training.
type Objective int

const (
	// Logistic is the standard noise-contrastive estimation objective
	// −log σ(e_i·e_p) − log σ(−e_i·e_n); bounded, self-normalizing.
	Logistic Objective = iota
	// Raw is the literal objective of Equation 6, −e_i·e_p + e_i·e_n.
	// Unbounded, so training clamps embedding norms to keep it stable.
	Raw
)

// PretrainConfig controls the NCE pre-training of Section IV-C.
type PretrainConfig struct {
	Dim       int       // embedding dimension d
	Radius    int       // neighbor radius r (paper: 5)
	Positives int       // N_p sampled neighbors per anchor (paper: 1)
	Negatives int       // N_n sampled noise cells per anchor (paper: 1)
	Epochs    int       // passes over all cells
	LR        float64   // SGD learning rate
	Objective Objective // loss variant
	Seed      int64
}

// DefaultPretrainConfig mirrors the paper's settings (Section V-A5) with a
// small number of epochs; the decomposed representation trains in seconds.
func DefaultPretrainConfig(dim int) PretrainConfig {
	return PretrainConfig{
		Dim:       dim,
		Radius:    5,
		Positives: 1,
		Negatives: 1,
		Epochs:    5,
		LR:        0.05,
		Objective: Logistic,
		Seed:      1,
	}
}

// Decomposed is the decomposed grid representation of Equation 5: each cell
// (x, y) is represented as e_x + e_y, so only NX+NY coordinate embeddings
// are learned instead of NX·NY cell embeddings.
type Decomposed struct {
	Grid *Grid
	Dim  int
	Ex   *nn.Tensor // NX×d coordinate embeddings along X
	Ey   *nn.Tensor // NY×d coordinate embeddings along Y
}

// NewDecomposed allocates randomly initialized coordinate embeddings.
func NewDecomposed(g *Grid, dim int, rng *rand.Rand) *Decomposed {
	std := 1 / math.Sqrt(float64(dim))
	return &Decomposed{
		Grid: g,
		Dim:  dim,
		Ex:   nn.Randn(g.NX, dim, std, rng),
		Ey:   nn.Randn(g.NY, dim, std, rng),
	}
}

// ParamCount returns the number of learned scalars: d·(NX+NY), versus
// d·NX·NY for a full table — the memory claim of Section IV-C.
func (d *Decomposed) ParamCount() int { return d.Dim * (d.Grid.NX + d.Grid.NY) }

// Vector writes the embedding of cell (x, y) into out (length Dim).
func (d *Decomposed) Vector(x, y int, out []float64) {
	ex := d.Ex.Data[x*d.Dim : (x+1)*d.Dim]
	ey := d.Ey.Data[y*d.Dim : (y+1)*d.Dim]
	for i := range out {
		out[i] = ex[i] + ey[i]
	}
}

// EmbedCells returns the n×d embedding matrix for a grid trajectory, as a
// graph tensor. The coordinate tables are constants (gradients never reach
// them — they are frozen after pre-training, Section IV-C).
func (d *Decomposed) EmbedCells(cells []int) *nn.Tensor {
	xs := make([]int, len(cells))
	ys := make([]int, len(cells))
	for i, c := range cells {
		xs[i], ys[i] = d.Grid.CoordOf(c)
	}
	return nn.Add(nn.Gather(d.Ex, xs), nn.Gather(d.Ey, ys))
}

// Pretrain runs the NCE pre-training of Equations 6–7: for each cell, pull
// its embedding toward sampled neighbors within the radius and push it from
// uniformly sampled noise cells. Positive offsets are drawn from [1, r] as
// in Equation 7. Returns the mean loss of the final epoch.
func (d *Decomposed) Pretrain(cfg PretrainConfig) float64 {
	rng := rand.New(rand.NewSource(cfg.Seed))
	g := d.Grid
	dim := d.Dim
	ei := make([]float64, dim)
	ep := make([]float64, dim)
	en := make([]float64, dim)
	var lastLoss float64
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		var sum float64
		var cnt int
		for y := 0; y < g.NY; y++ {
			for x := 0; x < g.NX; x++ {
				for s := 0; s < cfg.Positives; s++ {
					// Equation 7: neighbor via offsets from [1, r], clamped.
					px := clampInt(x+1+rng.Intn(cfg.Radius), 0, g.NX-1)
					py := clampInt(y+1+rng.Intn(cfg.Radius), 0, g.NY-1)
					for n := 0; n < cfg.Negatives; n++ {
						nx := rng.Intn(g.NX)
						ny := rng.Intn(g.NY)
						d.Vector(x, y, ei)
						d.Vector(px, py, ep)
						d.Vector(nx, ny, en)
						sum += d.sgdStep(cfg, x, y, px, py, nx, ny, ei, ep, en)
						cnt++
					}
				}
			}
		}
		if cnt > 0 {
			lastLoss = sum / float64(cnt)
		}
	}
	return lastLoss
}

// sgdStep applies one NCE update and returns the sample loss.
func (d *Decomposed) sgdStep(cfg PretrainConfig, x, y, px, py, nx, ny int, ei, ep, en []float64) float64 {
	var dotP, dotN float64
	for k := 0; k < d.Dim; k++ {
		dotP += ei[k] * ep[k]
		dotN += ei[k] * en[k]
	}
	var loss, gp, gn float64
	switch cfg.Objective {
	case Logistic:
		// L = −log σ(dotP) − log σ(−dotN)
		sp := sigmoid(dotP)
		sn := sigmoid(dotN)
		loss = -math.Log(sp+1e-12) - math.Log(1-sn+1e-12)
		gp = sp - 1 // dL/d dotP
		gn = sn     // dL/d dotN
	case Raw:
		// L = −dotP + dotN (Equation 6)
		loss = -dotP + dotN
		gp = -1
		gn = 1
	}
	lr := cfg.LR
	// dL/d e_i = gp·e_p + gn·e_n ; dL/d e_p = gp·e_i ; dL/d e_n = gn·e_i.
	// Each cell embedding decomposes into its two coordinate rows.
	exi := d.Ex.Data[x*d.Dim : (x+1)*d.Dim]
	eyi := d.Ey.Data[y*d.Dim : (y+1)*d.Dim]
	exp_ := d.Ex.Data[px*d.Dim : (px+1)*d.Dim]
	eyp := d.Ey.Data[py*d.Dim : (py+1)*d.Dim]
	exn := d.Ex.Data[nx*d.Dim : (nx+1)*d.Dim]
	eyn := d.Ey.Data[ny*d.Dim : (ny+1)*d.Dim]
	for k := 0; k < d.Dim; k++ {
		gi := gp*ep[k] + gn*en[k]
		gpk := gp * ei[k]
		gnk := gn * ei[k]
		exi[k] -= lr * gi
		eyi[k] -= lr * gi
		exp_[k] -= lr * gpk
		eyp[k] -= lr * gpk
		exn[k] -= lr * gnk
		eyn[k] -= lr * gnk
	}
	if cfg.Objective == Raw {
		// The raw objective is unbounded; clamp row norms for stability.
		clampNorm(exi, 1)
		clampNorm(eyi, 1)
		clampNorm(exp_, 1)
		clampNorm(eyp, 1)
		clampNorm(exn, 1)
		clampNorm(eyn, 1)
	}
	return loss
}

func sigmoid(x float64) float64 { return 1 / (1 + math.Exp(-x)) }

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func clampNorm(v []float64, maxNorm float64) {
	var s float64
	for _, x := range v {
		s += x * x
	}
	n := math.Sqrt(s)
	if n > maxNorm {
		f := maxNorm / n
		for i := range v {
			v[i] *= f
		}
	}
}

// CosineCellSim returns the cosine similarity between the embeddings of two
// cells — used by tests and the Figure 7 study to verify that spatial
// proximity is captured.
func (d *Decomposed) CosineCellSim(x1, y1, x2, y2 int) float64 {
	a := make([]float64, d.Dim)
	b := make([]float64, d.Dim)
	d.Vector(x1, y1, a)
	d.Vector(x2, y2, b)
	return cosine(a, b)
}

func cosine(a, b []float64) float64 {
	var dot, na, nb float64
	for i := range a {
		dot += a[i] * b[i]
		na += a[i] * a[i]
		nb += b[i] * b[i]
	}
	//lint:ignore floatcompare guards the division below against exactly-zero norms (all-zero vectors); near-zero norms still divide finitely
	if na == 0 || nb == 0 {
		return 0
	}
	return dot / math.Sqrt(na*nb)
}
