// Package grid implements the spatial grid machinery of the paper:
//
//   - partitioning the study space into equal-size cells and mapping GPS
//     trajectories to grid trajectories (Definition 2);
//   - the decomposed grid representation e_g = e_x + e_y with its NCE
//     pre-training (Section IV-C, Equations 5–7);
//   - a node2vec baseline over the grid adjacency graph, the comparator of
//     the grid-representation study (Figure 7);
//   - a full per-cell embedding table for memory-footprint comparisons.
package grid

import (
	"fmt"
	"math"

	"traj2hash/internal/geo"
)

// Grid partitions an axis-aligned region into equal-size square cells.
// Cells are addressed either by (x, y) coordinate — column and row — or by a
// single id y*NX + x.
type Grid struct {
	MinX, MinY float64 // region origin
	CellSize   float64 // cell edge length, e.g. 50 m (Section V-A1)
	NX, NY     int     // number of cells along X and Y
}

// New builds a grid covering [min, max] with the given cell size. The region
// is padded so every point of the region falls inside a cell.
func New(min, max geo.Point, cellSize float64) (*Grid, error) {
	if cellSize <= 0 {
		return nil, fmt.Errorf("grid: cell size %v must be positive", cellSize)
	}
	if max.X < min.X || max.Y < min.Y {
		return nil, fmt.Errorf("grid: inverted region %v–%v", min, max)
	}
	nx := int(math.Floor((max.X-min.X)/cellSize)) + 1
	ny := int(math.Floor((max.Y-min.Y)/cellSize)) + 1
	return &Grid{MinX: min.X, MinY: min.Y, CellSize: cellSize, NX: nx, NY: ny}, nil
}

// FromTrajectories builds a grid that covers all points of ts.
func FromTrajectories(ts []geo.Trajectory, cellSize float64) (*Grid, error) {
	if len(ts) == 0 {
		return nil, fmt.Errorf("grid: no trajectories")
	}
	min := geo.Point{X: math.Inf(1), Y: math.Inf(1)}
	max := geo.Point{X: math.Inf(-1), Y: math.Inf(-1)}
	for _, t := range ts {
		if len(t) == 0 {
			continue
		}
		lo, hi := t.BoundingBox()
		min.X = math.Min(min.X, lo.X)
		min.Y = math.Min(min.Y, lo.Y)
		max.X = math.Max(max.X, hi.X)
		max.Y = math.Max(max.Y, hi.Y)
	}
	if math.IsInf(min.X, 1) {
		return nil, fmt.Errorf("grid: all trajectories empty")
	}
	return New(min, max, cellSize)
}

// Cells returns the total number of cells NX·NY.
func (g *Grid) Cells() int { return g.NX * g.NY }

// Coord maps a point to its (x, y) cell coordinate, clamped to the region.
func (g *Grid) Coord(p geo.Point) (x, y int) {
	x = int(math.Floor((p.X - g.MinX) / g.CellSize))
	y = int(math.Floor((p.Y - g.MinY) / g.CellSize))
	if x < 0 {
		x = 0
	}
	if x >= g.NX {
		x = g.NX - 1
	}
	if y < 0 {
		y = 0
	}
	if y >= g.NY {
		y = g.NY - 1
	}
	return x, y
}

// ID maps a point to its cell id y*NX + x.
func (g *Grid) ID(p geo.Point) int {
	x, y := g.Coord(p)
	return y*g.NX + x
}

// CoordOf splits a cell id back into its (x, y) coordinate.
func (g *Grid) CoordOf(id int) (x, y int) { return id % g.NX, id / g.NX }

// Center returns the center point of cell (x, y).
func (g *Grid) Center(x, y int) geo.Point {
	return geo.Point{
		X: g.MinX + (float64(x)+0.5)*g.CellSize,
		Y: g.MinY + (float64(y)+0.5)*g.CellSize,
	}
}

// GridTrajectory maps a GPS trajectory to its grid trajectory: the sequence
// of cell ids its points fall into (Definition 2). Consecutive duplicates
// are kept — the sequence stays aligned with the GPS points.
func (g *Grid) GridTrajectory(t geo.Trajectory) []int {
	out := make([]int, len(t))
	for i, p := range t {
		out[i] = g.ID(p)
	}
	return out
}

// CompressedGridTrajectory maps a GPS trajectory to its grid trajectory with
// consecutive duplicate cells collapsed — the form used as a cluster key by
// the fast triplet generation (Section IV-F), where trajectories "share the
// same grid trajectory".
func (g *Grid) CompressedGridTrajectory(t geo.Trajectory) []int {
	out := make([]int, 0, len(t))
	prev := -1
	for _, p := range t {
		id := g.ID(p)
		if id != prev {
			out = append(out, id)
			prev = id
		}
	}
	return out
}

// KeyOf serializes a compressed grid trajectory into a map key.
func KeyOf(cells []int) string {
	// Varint-ish packing: cell ids separated by commas. Simple and
	// collision-free.
	b := make([]byte, 0, len(cells)*6)
	for i, c := range cells {
		if i > 0 {
			b = append(b, ',')
		}
		b = appendInt(b, c)
	}
	return string(b)
}

func appendInt(b []byte, v int) []byte {
	if v == 0 {
		return append(b, '0')
	}
	if v < 0 {
		b = append(b, '-')
		v = -v
	}
	var tmp [20]byte
	i := len(tmp)
	for v > 0 {
		i--
		tmp[i] = byte('0' + v%10)
		v /= 10
	}
	return append(b, tmp[i:]...)
}
