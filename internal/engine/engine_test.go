package engine

import (
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"traj2hash/internal/hamming"
)

func randVecs(rng *rand.Rand, n, d int) [][]float64 {
	out := make([][]float64, n)
	for i := range out {
		v := make([]float64, d)
		for j := range v {
			v[j] = rng.NormFloat64()
		}
		out[i] = v
	}
	return out
}

func randCodes(rng *rand.Rand, n, bits int) []hamming.Code {
	out := make([]hamming.Code, n)
	for i := range out {
		v := make([]float64, bits)
		for j := range v {
			v[j] = rng.NormFloat64()
		}
		out[i] = hamming.FromSigns(v)
	}
	return out
}

// mustBackend builds a backend and feeds it items; embs or codes may be
// nil when the backend only consumes the other representation.
func mustBackend(t *testing.T, name string, cfg Config, embs [][]float64, codes []hamming.Code) Backend {
	t.Helper()
	be, err := NewBackend(name, cfg)
	if err != nil {
		t.Fatal(err)
	}
	n := len(embs)
	if n == 0 {
		n = len(codes)
	}
	for i := 0; i < n; i++ {
		var e []float64
		var c hamming.Code
		if embs != nil {
			e = embs[i]
		}
		if codes != nil {
			c = codes[i]
		}
		if err := be.Add(e, c); err != nil {
			t.Fatal(err)
		}
	}
	return be
}

func TestRegistryHasAllFiveBackends(t *testing.T) {
	want := []string{EuclideanBFName, HammingBFName, HammingHybridName, MIHName, VPTreeName}
	got := BackendNames()
	for _, w := range want {
		found := false
		for _, g := range got {
			if g == w {
				found = true
			}
		}
		if !found {
			t.Errorf("backend %q not registered (have %v)", w, got)
		}
	}
	if _, err := NewBackend("no-such-backend", Config{}); err == nil {
		t.Error("unknown backend accepted")
	}
	// Aliases resolve.
	if n, err := Resolve("hamming-mih"); err != nil || n != MIHName {
		t.Errorf("alias hamming-mih -> %q, %v", n, err)
	}
}

func TestBackendValidation(t *testing.T) {
	eb, _ := NewBackend(EuclideanBFName, Config{})
	if err := eb.Add(nil, hamming.Code{}); err == nil {
		t.Error("euclidean-bf accepted empty embedding")
	}
	if err := eb.Add([]float64{1, 2}, hamming.Code{}); err != nil {
		t.Fatal(err)
	}
	if err := eb.Add([]float64{1}, hamming.Code{}); err == nil {
		t.Error("euclidean-bf accepted dim mismatch")
	}
	for _, name := range []string{HammingBFName, HammingHybridName, MIHName} {
		hb, _ := NewBackend(name, Config{Bits: 16})
		if err := hb.Add(nil, hamming.Code{}); err == nil {
			t.Errorf("%s accepted empty code", name)
		}
		if err := hb.Add(nil, hamming.FromSigns(make([]float64, 8))); err == nil {
			t.Errorf("%s accepted wrong bit length", name)
		}
		if err := hb.Add(nil, hamming.FromSigns(make([]float64, 16))); err != nil {
			t.Errorf("%s rejected matching bits: %v", name, err)
		}
	}
}

func TestDefaultMIHChunks(t *testing.T) {
	for _, tc := range []struct{ bits, want int }{
		{16, 4}, {64, 4}, {256, 4}, {2, 2}, {300, 5},
	} {
		if got := defaultMIHChunks(tc.bits); got != tc.want {
			t.Errorf("defaultMIHChunks(%d) = %d, want %d", tc.bits, got, tc.want)
		}
		// The chosen chunk count must be constructible.
		rng := rand.New(rand.NewSource(9))
		if _, err := hamming.NewMIH(randCodes(rng, 3, tc.bits), defaultMIHChunks(tc.bits)); err != nil {
			t.Errorf("bits=%d: %v", tc.bits, err)
		}
	}
}

func TestEngineRoundRobinSharding(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	e, err := New(Options{Backends: []string{EuclideanBFName}, Shards: 3, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	vecs := randVecs(rng, 10, 4)
	ids, err := e.AddBatch(vecs, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i, id := range ids {
		if id != i {
			t.Fatalf("ids = %v", ids)
		}
	}
	if e.Len() != 10 {
		t.Fatalf("Len = %d", e.Len())
	}
	// Shard s holds global ids s, s+3, s+6, … in ascending order.
	for s, sh := range e.shards {
		for j, id := range sh.ids {
			if id != s+3*j {
				t.Fatalf("shard %d ids = %v", s, sh.ids)
			}
		}
	}
	// Searching for an exact item returns it first with score 0.
	res := e.Search(Query{Emb: vecs[7]}, 3)
	if len(res) != 3 || res[0].ID != 7 || res[0].Score != 0 {
		t.Fatalf("self search = %+v", res)
	}
}

func TestEngineSearchWithUnknownBackend(t *testing.T) {
	e, err := New(Options{Backends: []string{EuclideanBFName}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.SearchWith(HammingBFName, Query{}, 3); err == nil {
		t.Error("backend not maintained by engine accepted")
	}
	if _, err := e.SearchWith("bogus", Query{}, 3); err == nil {
		t.Error("unknown backend accepted")
	}
}

func TestEngineWithin(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	codes := randCodes(rng, 60, 12)
	e, err := New(Options{
		Backends: []string{HammingHybridName},
		Shards:   4,
		Config:   Config{Bits: 12},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range codes {
		if _, err := e.Add(c.Signs(), c); err != nil {
			t.Fatal(err)
		}
	}
	got, err := e.Within(codes[5], 0)
	if err != nil {
		t.Fatal(err)
	}
	// Reference: scan.
	var want []int
	for i, c := range codes {
		if hamming.Distance(codes[5], c) == 0 {
			want = append(want, i)
		}
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Within(0) = %v, want %v", got, want)
	}
	// Monotone in radius and always sorted.
	prev := len(got)
	for r := 1; r <= 2; r++ {
		ids, err := e.Within(codes[5], r)
		if err != nil {
			t.Fatal(err)
		}
		if len(ids) < prev {
			t.Errorf("Within not monotone at radius %d", r)
		}
		for i := 1; i < len(ids); i++ {
			if ids[i] <= ids[i-1] {
				t.Fatalf("Within radius %d not sorted: %v", r, ids)
			}
		}
		prev = len(ids)
	}
	// An engine without a hybrid backend refuses.
	e2, _ := New(Options{Backends: []string{EuclideanBFName}})
	if _, err := e2.Within(codes[0], 1); err == nil {
		t.Error("Within without hybrid backend accepted")
	}
}

func TestEngineSearchBatchMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	vecs := randVecs(rng, 200, 8)
	for _, backend := range []string{EuclideanBFName, HammingBFName, HammingHybridName, MIHName, VPTreeName} {
		e, err := New(Options{
			Backends: []string{backend},
			Shards:   3,
			Workers:  4,
		})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := e.AddBatch(vecs, nil); err != nil {
			t.Fatal(err)
		}
		qs := make([]Query, 10)
		for i := range qs {
			emb := randVecs(rng, 1, 8)[0]
			qs[i] = Query{Emb: emb, Code: hamming.FromSigns(emb)}
		}
		batch := e.SearchBatch(qs, 7)
		for qi, q := range qs {
			single := e.Search(q, 7)
			if !reflect.DeepEqual(batch[qi], single) {
				t.Fatalf("%s query %d: batch %v != single %v", backend, qi, batch[qi], single)
			}
		}
	}
}

// TestEngineConcurrentAddSearch is the acceptance-criterion race test:
// concurrent Add and Search (single and batch, plus Within) against a
// sharded engine, meant to run under -race.
func TestEngineConcurrentAddSearch(t *testing.T) {
	e, err := New(Options{
		Backends: []string{HammingHybridName, EuclideanBFName, MIHName, VPTreeName},
		Shards:   4,
		Workers:  4,
		Config:   Config{Bits: 16},
	})
	if err != nil {
		t.Fatal(err)
	}
	seedRng := rand.New(rand.NewSource(4))
	for _, v := range randVecs(seedRng, 32, 16) {
		if _, err := e.Add(v, hamming.FromSigns(v)); err != nil {
			t.Fatal(err)
		}
	}

	const (
		writers       = 3
		readers       = 4
		addsPerWriter = 40
		searches      = 60
	)
	var wg sync.WaitGroup
	errCh := make(chan error, writers+readers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < addsPerWriter; i++ {
				v := randVecs(rng, 1, 16)[0]
				if _, err := e.Add(v, hamming.FromSigns(v)); err != nil {
					errCh <- err
					return
				}
			}
		}(int64(100 + w))
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < searches; i++ {
				v := randVecs(rng, 1, 16)[0]
				q := Query{Emb: v, Code: hamming.FromSigns(v)}
				for _, name := range e.Backends() {
					rs, err := e.SearchWith(name, q, 5)
					if err != nil {
						errCh <- err
						return
					}
					for j := 1; j < len(rs); j++ {
						if rs[j].Score < rs[j-1].Score {
							t.Errorf("%s results unsorted", name)
						}
					}
				}
				if i%10 == 0 {
					e.SearchBatch([]Query{q, q}, 3)
					if _, err := e.Within(q.Code, 1); err != nil {
						errCh <- err
						return
					}
				}
			}
		}(int64(200 + r))
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	if want := 32 + writers*addsPerWriter; e.Len() != want {
		t.Fatalf("Len = %d, want %d", e.Len(), want)
	}
}
