package engine

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// VPTree is a vantage-point tree over Euclidean-space embeddings: exact
// k-nearest-neighbor search with triangle-inequality pruning, typically
// sublinear on clustered embeddings. It addresses the paper's observation
// (Section I) that neural-similarity methods "calculate all the distances
// between the query and the trajectories in the database" — the latent
// space can also be organized by a metric tree; the Hamming code table is
// the paper's answer, and this is the classical Euclidean one, provided
// for comparison (see BenchmarkSearchVPTree in the root bench suite).
type VPTree struct {
	dim     int
	vectors [][]float64
	root    *vpNode
}

type vpNode struct {
	id      int     // vantage point
	radius  float64 // median distance of the subtree's points to the vantage
	inside  *vpNode // points with d(x, vantage) < radius
	outside *vpNode
}

// NewVPTree builds the tree over the vectors (all of equal dimension).
func NewVPTree(vectors [][]float64, seed int64) (*VPTree, error) {
	if len(vectors) == 0 {
		return nil, fmt.Errorf("engine: empty vector set")
	}
	dim := len(vectors[0])
	for i, v := range vectors {
		if len(v) != dim {
			return nil, fmt.Errorf("engine: vector %d has dim %d, want %d", i, len(v), dim)
		}
	}
	t := &VPTree{dim: dim, vectors: vectors}
	ids := make([]int, len(vectors))
	for i := range ids {
		ids[i] = i
	}
	rng := rand.New(rand.NewSource(seed))
	t.root = t.build(ids, rng)
	return t, nil
}

func (t *VPTree) dist(a, b int) float64 {
	va, vb := t.vectors[a], t.vectors[b]
	var sum float64
	for i := range va {
		d := va[i] - vb[i]
		sum += d * d
	}
	return math.Sqrt(sum)
}

func (t *VPTree) distToQuery(q []float64, id int) float64 {
	v := t.vectors[id]
	var sum float64
	for i := range q {
		d := q[i] - v[i]
		sum += d * d
	}
	return math.Sqrt(sum)
}

func (t *VPTree) build(ids []int, rng *rand.Rand) *vpNode {
	if len(ids) == 0 {
		return nil
	}
	// Random vantage point.
	vi := rng.Intn(len(ids))
	ids[0], ids[vi] = ids[vi], ids[0]
	n := &vpNode{id: ids[0]}
	rest := ids[1:]
	if len(rest) == 0 {
		return n
	}
	ds := make([]float64, len(rest))
	for i, id := range rest {
		ds[i] = t.dist(n.id, id)
	}
	// Partition around the median distance.
	order := make([]int, len(rest))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return ds[order[a]] < ds[order[b]] })
	mid := len(order) / 2
	n.radius = ds[order[mid]]
	inside := make([]int, 0, mid)
	outside := make([]int, 0, len(order)-mid)
	for _, oi := range order[:mid] {
		inside = append(inside, rest[oi])
	}
	for _, oi := range order[mid:] {
		outside = append(outside, rest[oi])
	}
	n.inside = t.build(inside, rng)
	n.outside = t.build(outside, rng)
	return n
}

// knnHeap is a bounded max-heap of the current best candidates.
type knnHeap struct {
	ids   []int
	dists []float64
	k     int
}

func (h *knnHeap) worstDist() float64 {
	if len(h.ids) < h.k {
		return math.Inf(1)
	}
	return h.dists[0]
}

func (h *knnHeap) push(id int, d float64) {
	if len(h.ids) < h.k {
		h.ids = append(h.ids, id)
		h.dists = append(h.dists, d)
		i := len(h.ids) - 1
		for i > 0 {
			p := (i - 1) / 2
			if !h.less(p, i) {
				break
			}
			h.swap(i, p)
			i = p
		}
		return
	}
	if d >= h.dists[0] {
		return
	}
	h.ids[0], h.dists[0] = id, d
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		w := i
		if l < len(h.ids) && h.less(w, l) {
			w = l
		}
		if r < len(h.ids) && h.less(w, r) {
			w = r
		}
		if w == i {
			return
		}
		h.swap(i, w)
		i = w
	}
}

// less reports whether entry a is better-kept (closer) than b — the heap
// keeps the worst on top.
func (h *knnHeap) less(a, b int) bool {
	//lint:ignore floatcompare heap tie-break over stored distances; exact inequality of the same stored values is the determinism contract
	if h.dists[a] != h.dists[b] {
		return h.dists[a] < h.dists[b]
	}
	return h.ids[a] < h.ids[b]
}

func (h *knnHeap) swap(a, b int) {
	h.ids[a], h.ids[b] = h.ids[b], h.ids[a]
	h.dists[a], h.dists[b] = h.dists[b], h.dists[a]
}

// Search returns the exact k nearest vector ids to q, closest first.
// Visited counts distance evaluations (exposed for pruning diagnostics).
func (t *VPTree) Search(q []float64, k int) (ids []int, visited int) {
	if len(q) != t.dim {
		panic(fmt.Sprintf("engine: query dim %d, tree dim %d", len(q), t.dim))
	}
	h := &knnHeap{k: k}
	var walk func(n *vpNode)
	walk = func(n *vpNode) {
		if n == nil {
			return
		}
		d := t.distToQuery(q, n.id)
		visited++
		h.push(n.id, d)
		// Descend into the more promising half first, then prune the other
		// with the (possibly tightened) k-th best distance.
		if d < n.radius {
			walk(n.inside)
			if d+h.worstDist() >= n.radius {
				walk(n.outside)
			}
		} else {
			walk(n.outside)
			if d-h.worstDist() <= n.radius {
				walk(n.inside)
			}
		}
	}
	walk(t.root)
	// Extract ascending.
	type pair struct {
		id int
		d  float64
	}
	ps := make([]pair, len(h.ids))
	for i := range h.ids {
		ps[i] = pair{h.ids[i], h.dists[i]}
	}
	sort.Slice(ps, func(a, b int) bool {
		//lint:ignore floatcompare sort tie-break over stored distances; see knnHeap.less
		if ps[a].d != ps[b].d {
			return ps[a].d < ps[b].d
		}
		return ps[a].id < ps[b].id
	})
	out := make([]int, len(ps))
	for i, p := range ps {
		out[i] = p.id
	}
	return out, visited
}
