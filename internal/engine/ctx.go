package engine

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"time"

	"traj2hash/internal/hamming"
	"traj2hash/internal/obs"
)

// Status reports how completely a fan-out query was answered. The
// engine's failure-domain contract (DESIGN.md "Failure semantics &
// graceful degradation") is that a query never blocks past its context
// and never crashes the process: a panicking shard backend degrades into
// a smaller result set, and an expired deadline returns whatever shards
// answered in time.
type Status struct {
	// Complete reports whether the returned results are the exact full
	// answer: every shard was consulted (or no shard work was needed,
	// e.g. k <= 0).
	Complete bool
	// ShardsOK counts shards that answered normally.
	ShardsOK int
	// ShardsFailed counts shards whose backend failed — today that means
	// it panicked; the recovered, "pkg: "-attributed panic value is
	// surfaced through Err. Shards skipped because the context was
	// already done count in neither ShardsOK nor ShardsFailed.
	ShardsFailed int
	// Err aggregates (errors.Join) the per-shard failures and, when the
	// fan-out was cut short, the context's error. Nil iff Complete.
	Err error
}

// statusFor finalizes a Status: Complete iff every one of n shards
// answered, with the context error appended when the fan-out was cut
// short before completion.
func statusFor(ctx context.Context, n, ok, failed int, errs []error) Status {
	st := Status{ShardsOK: ok, ShardsFailed: failed}
	st.Complete = ok == n
	if !st.Complete {
		if cerr := ctx.Err(); cerr != nil {
			errs = append(errs, cerr)
		}
	}
	st.Err = errors.Join(errs...)
	return st
}

// outcome is one fan-out unit's result: the index it belongs to, the
// value produced, and the failure (if any). skipped marks units never
// attempted because the context was already done.
type outcome[T any] struct {
	i       int
	v       T
	err     error
	skipped bool
}

// fanOut runs fn(0..n-1) across at most `workers` goroutines, gathering
// outcomes until every unit reports or ctx is done — whichever comes
// first. Stragglers still running at cancellation deliver into a
// buffered channel and exit on their own; fanOut never blocks on them
// and never leaks a goroutine. done[i] reports whether unit i completed
// without error; errs collects unit failures in arrival order.
//
// fn must confine its own panics (the engine's per-shard closures
// recover internally, converting a backend panic into an error) — fanOut
// adds a second recovery layer so that even a misbehaving fn degrades
// into an error instead of killing the process.
func fanOut[T any](ctx context.Context, n, workers int, fn func(i int) (T, error)) (vals []T, done []bool, errs []error) {
	vals = make([]T, n)
	done = make([]bool, n)
	if n == 0 {
		return vals, done, nil
	}
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	ch := make(chan outcome[T], n)
	run := func(i int) outcome[T] {
		if err := ctx.Err(); err != nil {
			return outcome[T]{i: i, skipped: true}
		}
		v, err := func() (v T, err error) {
			defer func() {
				if r := recover(); r != nil {
					err = fmt.Errorf("engine: fan-out unit %d panicked: %v", i, r)
				}
			}()
			return fn(i)
		}()
		return outcome[T]{i: i, v: v, err: err}
	}
	next := make(chan int) // unbuffered: workers pull indices until closed
	for w := 0; w < workers; w++ {
		go func() {
			for i := range next {
				ch <- run(i)
			}
		}()
	}
	go func() {
		defer close(next)
		for i := 0; i < n; i++ {
			select {
			case next <- i:
			case <-ctx.Done():
				// Unstarted units: report them as skipped so the
				// collector can account for every index and return.
				for ; i < n; i++ {
					ch <- outcome[T]{i: i, skipped: true}
				}
				return
			}
		}
	}()
	gather := func(out outcome[T]) {
		switch {
		case out.skipped:
		case out.err != nil:
			errs = append(errs, out.err)
		default:
			vals[out.i] = out.v
			done[out.i] = true
		}
	}
	for received := 0; received < n; {
		select {
		case out := <-ch:
			received++
			gather(out)
		case <-ctx.Done():
			// Deadline hit mid-fan-out: scoop up outcomes already
			// delivered, then stop waiting for in-flight units — they
			// finish into the buffered channel and are garbage-collected
			// with it.
			for received < n {
				select {
				case out := <-ch:
					received++
					gather(out)
				default:
					return vals, done, errs
				}
			}
		}
	}
	return vals, done, errs
}

// searchShard answers a top-k query on one shard with panic isolation:
// a panicking backend (or a panic in the id remap) is recovered and
// converted into an error carrying the attributed panic value, with the
// shard's read lock released on the way out (defer keeps the lock
// discipline panic-safe).
//
// Tombstones: when the shard carries deleted items the backend is asked
// for k+deadN results and the dead ones are filtered out. That
// over-fetch is exact, not heuristic — at most deadN dead items can
// outrank a live one, so every member of the live top-k has backend rank
// below k+deadN and survives the cut.
//
// Timing note: the shard latency histogram is observed HERE, inside the
// fan-out worker, not around the merge at the collection site — so a
// slow shard is attributable to its own engine.shard.seconds.<backend>.<i>
// series even when the fan-out as a whole is bounded by a deadline. The
// panicking path is timed too (the time burned before the panic is real
// latency), and recoveries count into engine.shard.panics.
func (e *Engine) searchShard(bi, si int, q Query, k int) (rs []Result, err error) {
	sh := e.shards[si]
	var start time.Time
	if e.met != nil {
		start = time.Now()
	}
	defer func() {
		if r := recover(); r != nil {
			rs, err = nil, fmt.Errorf("engine: shard %d backend panic: %v", si, r)
			if e.met != nil {
				e.met.panics.Inc()
			}
		}
		if e.met != nil {
			e.met.shardLat[bi][si].Observe(time.Since(start).Seconds())
		}
	}()
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	fetch := k
	if sh.deadN > 0 {
		fetch = k + sh.deadN
	}
	raw := sh.backends[bi].Search(q, fetch)
	out := make([]Result, 0, min(k, len(raw)))
	for _, r := range raw {
		if sh.dead[r.ID] {
			continue
		}
		out = append(out, Result{ID: sh.ids[r.ID], Score: r.Score})
		if len(out) == k {
			break
		}
	}
	return out, nil
}

// SearchCtx answers a top-k query with the default backend, honoring
// cancellation and deadlines: the shard fan-out stops as soon as ctx is
// done and the per-shard top-k lists gathered so far are merged into a
// partial answer, tagged by the returned Status. A panicking shard
// degrades the answer instead of crashing the process.
func (e *Engine) SearchCtx(ctx context.Context, q Query, k int) ([]Result, Status) {
	//lint:ignore errcheck the default backend name is registered at construction; the config error is impossible
	rs, st, _ := e.SearchWithCtx(ctx, e.names[0], q, k)
	return rs, st
}

// SearchWithCtx is SearchCtx with an explicit backend. The error return
// reports configuration problems (unknown backend); runtime degradation
// — failed shards, expired deadlines — is reported through Status so
// partial results stay usable.
func (e *Engine) SearchWithCtx(ctx context.Context, name string, q Query, k int) ([]Result, Status, error) {
	bi, err := e.backendIndex(name)
	if err != nil {
		return nil, Status{}, err
	}
	rs, st := e.searchShardsCtx(ctx, bi, q, k)
	return rs, st, nil
}

// searchShardsCtx fans a query out across shards in parallel under ctx
// and merges whatever answered into the (possibly partial) top-k.
func (e *Engine) searchShardsCtx(ctx context.Context, bi int, q Query, k int) ([]Result, Status) {
	if k <= 0 {
		// The exact answer to a non-positive k is empty; no shard work
		// is needed, so the empty answer is complete.
		return nil, Status{Complete: true}
	}
	var span *obs.ActiveSpan
	if e.met != nil {
		span = e.met.tracer.Start(e.met.spanNames[bi], 0)
	}
	n := len(e.shards)
	per, done, errs := fanOut(ctx, n, e.opts.Workers, func(si int) ([]Result, error) {
		return e.searchShard(bi, si, q, k)
	})
	ok := 0
	for _, d := range done {
		if d {
			ok++
		}
	}
	rs := e.merge(per, k)
	st := statusFor(ctx, n, ok, len(errs), errs)
	e.finishQuery(st, span)
	return rs, st
}

// finishQuery records the per-query accounting shared by every search
// path: the total query count, the degraded count when the status is
// incomplete, and the query span (when tracing is live).
func (e *Engine) finishQuery(st Status, span *obs.ActiveSpan) {
	if e.met == nil {
		return
	}
	e.met.searches.Inc()
	if !st.Complete {
		e.met.degraded.Inc()
	}
	span.End()
}

// searchShardsSeqCtx is searchShardsCtx without the per-shard goroutine
// fan-out: one goroutine walks every shard, checking ctx between shards
// (an in-flight shard search itself is not interruptible). Used by the
// batch path, where parallelism comes from query-level fan-out.
func (e *Engine) searchShardsSeqCtx(ctx context.Context, bi int, q Query, k int) ([]Result, Status) {
	if k <= 0 {
		return nil, Status{Complete: true}
	}
	var span *obs.ActiveSpan
	if e.met != nil {
		span = e.met.tracer.Start(e.met.spanNames[bi], 0)
	}
	n := len(e.shards)
	per := make([][]Result, n)
	var ok int
	var errs []error
	var failed int
	for si := 0; si < n; si++ {
		if ctx.Err() != nil {
			break
		}
		rs, err := e.searchShard(bi, si, q, k)
		if err != nil {
			failed++
			errs = append(errs, err)
			continue
		}
		per[si] = rs
		ok++
	}
	out := e.merge(per, k)
	st := statusFor(ctx, n, ok, failed, errs)
	e.finishQuery(st, span)
	return out, st
}

// SearchBatchCtx answers many queries with the default backend under
// ctx, parallelized across queries by the engine's worker budget.
// Results and statuses are in query order; queries never started because
// the context expired first carry an incomplete Status with the context
// error.
func (e *Engine) SearchBatchCtx(ctx context.Context, qs []Query, k int) ([][]Result, []Status) {
	//lint:ignore errcheck the default backend name is registered at construction; the config error is impossible
	rs, sts, _ := e.SearchBatchWithCtx(ctx, e.names[0], qs, k)
	return rs, sts
}

// SearchBatchWithCtx is SearchBatchCtx with an explicit backend. The
// error reports configuration problems only; per-query degradation is in
// the Status slice.
func (e *Engine) SearchBatchWithCtx(ctx context.Context, name string, qs []Query, k int) ([][]Result, []Status, error) {
	bi, err := e.backendIndex(name)
	if err != nil {
		return nil, nil, err
	}
	type qOut struct {
		rs []Result
		st Status
	}
	vals, done, _ := fanOut(ctx, len(qs), e.opts.Workers, func(qi int) (qOut, error) {
		rs, st := e.searchShardsSeqCtx(ctx, bi, qs[qi], k)
		return qOut{rs: rs, st: st}, nil
	})
	out := make([][]Result, len(qs))
	sts := make([]Status, len(qs))
	for i := range qs {
		if done[i] {
			out[i] = vals[i].rs
			sts[i] = vals[i].st
		} else {
			sts[i] = statusFor(ctx, len(e.shards), 0, 0, nil)
			// Queries that never ran still count: they were asked and
			// answered (with nothing), which is exactly what the degraded
			// counter exists to surface.
			e.finishQuery(sts[i], nil)
		}
	}
	return out, sts, nil
}

// WithinCtx returns the global ids whose codes lie within the given
// Hamming radius (0–2) of the query code, sorted ascending, honoring
// cancellation and isolating shard panics like SearchCtx. The error
// reports configuration problems (no radius-lookup backend); runtime
// degradation is in the Status.
func (e *Engine) WithinCtx(ctx context.Context, code hamming.Code, radius int) ([]int, Status, error) {
	bi := -1
	for i := range e.names {
		if _, ok := e.shards[0].backends[i].(radiusSearcher); ok {
			bi = i
			break
		}
	}
	if bi < 0 {
		return nil, Status{}, fmt.Errorf("engine: no radius-lookup backend (add %q)", HammingHybridName)
	}
	var span *obs.ActiveSpan
	if e.met != nil {
		span = e.met.tracer.Start("engine.within", 0)
	}
	n := len(e.shards)
	per, done, errs := fanOut(ctx, n, e.opts.Workers, func(si int) ([]int, error) {
		return e.withinShard(bi, si, code, radius)
	})
	ok := 0
	var all []int
	for si, d := range done {
		if d {
			ok++
			all = append(all, per[si]...)
		}
	}
	sort.Ints(all)
	st := statusFor(ctx, n, ok, len(errs), errs)
	e.finishQuery(st, span)
	return all, st, nil
}

// withinShard is the panic-isolated per-shard radius lookup. Deleted
// items are filtered here, at the local→global remap, so a tombstoned id
// never appears in a Within answer.
func (e *Engine) withinShard(bi, si int, code hamming.Code, radius int) (ids []int, err error) {
	sh := e.shards[si]
	defer func() {
		if r := recover(); r != nil {
			ids, err = nil, fmt.Errorf("engine: shard %d backend panic: %v", si, r)
			if e.met != nil {
				e.met.panics.Inc()
			}
		}
	}()
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	local := sh.backends[bi].(radiusSearcher).Within(code, radius)
	global := make([]int, 0, len(local))
	for _, id := range local {
		if sh.dead[id] {
			continue
		}
		global = append(global, sh.ids[id])
	}
	return global, nil
}
