package engine

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"traj2hash/internal/hamming"
	"traj2hash/internal/obs"
)

// Options configures an Engine.
type Options struct {
	// Backends are the registry names of the backends every shard
	// maintains. Backends[0] is the default used by Search/SearchBatch.
	// Empty means {hamming-hybrid}.
	Backends []string
	// Shards is the number of database partitions (default 1). Items are
	// assigned round-robin, so shard loads stay balanced under any
	// insertion pattern and per-shard id order follows global id order.
	Shards int
	// Workers bounds the engine's parallelism: the per-query shard
	// fan-out and the SearchBatch query fan-out (default GOMAXPROCS).
	Workers int
	// CompactAt is the tombstone-density threshold that triggers a shard
	// compaction at the end of the Delete that crosses it: when
	// deleted/total for a shard reaches the threshold, the shard's
	// backends are rebuilt over the live items only (MIH buckets and
	// VP-trees do not shrink incrementally). 0 means the default of 0.25;
	// a negative value disables automatic compaction (Compact can still
	// be called explicitly). Compaction never changes answers — only the
	// cost of computing them.
	CompactAt float64
	// Metrics, when non-nil, receives the engine's runtime metrics and
	// spans (per-backend/per-shard search latency, merge latency,
	// candidate counts, shard panic recoveries, degraded answers — see
	// DESIGN.md "Observability" for the name table). Nil disables
	// instrumentation entirely: the engine takes the no-op path with no
	// timestamps and no atomic updates, the baseline of the overhead
	// benchmarks.
	Metrics *obs.Registry
	// Config carries backend construction parameters.
	Config Config
}

// DefaultCompactAt is the tombstone-density threshold used when
// Options.CompactAt is zero.
const DefaultCompactAt = 0.25

func (o Options) withDefaults() Options {
	if len(o.Backends) == 0 {
		o.Backends = []string{HammingHybridName}
	}
	if o.Shards <= 0 {
		o.Shards = 1
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	//lint:ignore floatcompare 0 is the field's exact "not set" sentinel, never a computed value
	if o.CompactAt == 0 {
		o.CompactAt = DefaultCompactAt
	}
	return o
}

// shard is one partition of the database: the global ids of its items
// (ascending, thanks to round-robin assignment under the add lock), one
// backend instance per configured backend name, the canonical item
// representations (embedding + code, parallel to ids — the source of
// truth compaction and durability snapshots rebuild from), and the
// tombstone overlay (dead bitmap + count) that Delete maintains and the
// search paths filter through.
//
// Liveness invariant: the live entries of ids are strictly ascending —
// Add appends increasing ids, Delete only flips dead bits, Update
// replaces in place, and compaction preserves order — which is what keeps
// per-backend local-id tie-breaks equal to global-id tie-breaks after any
// mutation history.
type shard struct {
	mu       sync.RWMutex
	ids      []int
	embs     [][]float64
	codes    []hamming.Code
	dead     []bool
	deadN    int
	backends []Backend
}

// Engine is a sharded, concurrency-safe top-k query engine. Every shard
// maintains the same set of pluggable backends over its partition of the
// items; a query fans out across shards in parallel and the per-shard
// top-k lists are merged by (score, id) into the exact global top-k.
//
// Add and Search may be called concurrently from any number of
// goroutines: a per-shard RWMutex serializes writes against reads, and a
// global add lock keeps id assignment strictly sequential.
type Engine struct {
	opts  Options
	names []string // canonical backend names, parallel to shard.backends
	met   *metrics // nil when Options.Metrics is nil (uninstrumented)

	addMu sync.Mutex
	next  int   // next global id, guarded by addMu
	live  int   // live (non-deleted) item count, guarded by addMu
	dim   int   // embedding dimension, fixed by the first Add (0 = none yet)
	locs  []loc // global id → (shard, local); local < 0 marks a deleted id

	shards []*shard
}

// loc places one global id inside the sharded store. A negative local
// index is the engine-level tombstone: the id existed and was deleted
// (its per-shard slot may already have been reclaimed by compaction).
type loc struct {
	shard int
	local int
}

// metrics caches the engine's instruments, resolved once at construction
// so the hot path never takes the registry lock. All instrument methods
// are nil-safe, but a nil *metrics short-circuits even the time.Now calls
// — that is the documented "no-op registry" baseline.
type metrics struct {
	searches    *obs.Counter       // engine.search.total
	degraded    *obs.Counter       // search.degraded
	panics      *obs.Counter       // engine.shard.panics
	deletes     *obs.Counter       // engine.deletes
	updates     *obs.Counter       // engine.updates
	compactions *obs.Counter       // engine.compactions
	candidates  *obs.Histogram     // engine.search.candidates
	mergeLat    *obs.Histogram     // engine.merge.seconds
	shardLat    [][]*obs.Histogram // [backend][shard] engine.shard.seconds.<backend>.<shard>
	spanNames   []string           // per-backend span names, precomputed
	tracer      *obs.Tracer
}

// newMetrics resolves the engine's instruments against reg. The
// per-backend/per-shard latency histograms share obs.LatencyBounds, so
// they merge exactly into a global latency distribution.
func newMetrics(reg *obs.Registry, names []string, shards int) *metrics {
	m := &metrics{
		searches:    reg.Counter("engine.search.total"),
		degraded:    reg.Counter("search.degraded"),
		panics:      reg.Counter("engine.shard.panics"),
		deletes:     reg.Counter("engine.deletes"),
		updates:     reg.Counter("engine.updates"),
		compactions: reg.Counter("engine.compactions"),
		candidates:  reg.Histogram("engine.search.candidates", obs.CountBounds()),
		mergeLat:    reg.Histogram("engine.merge.seconds", obs.LatencyBounds()),
		tracer:      reg.Tracer(),
	}
	m.shardLat = make([][]*obs.Histogram, len(names))
	m.spanNames = make([]string, len(names))
	for bi, n := range names {
		m.spanNames[bi] = "engine.search." + n
		m.shardLat[bi] = make([]*obs.Histogram, shards)
		for si := 0; si < shards; si++ {
			m.shardLat[bi][si] = reg.Histogram(
				fmt.Sprintf("engine.shard.seconds.%s.%d", n, si), obs.LatencyBounds())
		}
	}
	return m
}

// New builds an empty engine. Backend names are canonicalized and
// deduplicated, preserving order (the first stays the default).
func New(opts Options) (*Engine, error) {
	opts = opts.withDefaults()
	var names []string
	seen := map[string]bool{}
	for _, n := range opts.Backends {
		canonical, err := Resolve(n)
		if err != nil {
			return nil, err
		}
		if !seen[canonical] {
			seen[canonical] = true
			names = append(names, canonical)
		}
	}
	e := &Engine{opts: opts, names: names}
	if opts.Metrics != nil {
		e.met = newMetrics(opts.Metrics, names, opts.Shards)
	}
	for s := 0; s < opts.Shards; s++ {
		sh := &shard{}
		for _, n := range names {
			b, err := NewBackend(n, opts.Config)
			if err != nil {
				return nil, err
			}
			sh.backends = append(sh.backends, b)
		}
		e.shards = append(e.shards, sh)
	}
	return e, nil
}

// Backends returns the canonical backend names the engine maintains; the
// first is the default.
func (e *Engine) Backends() []string { return append([]string(nil), e.names...) }

// Shards returns the shard count.
func (e *Engine) Shards() int { return len(e.shards) }

// Len returns the number of live (non-deleted) indexed items.
func (e *Engine) Len() int {
	e.addMu.Lock()
	defer e.addMu.Unlock()
	return e.live
}

// NextID returns the next global id Add would assign — equivalently, the
// number of ids ever assigned, deleted ones included. It only equals Len
// while nothing has been deleted.
func (e *Engine) NextID() int {
	e.addMu.Lock()
	defer e.addMu.Unlock()
	return e.next
}

// Live reports whether id names an indexed, non-deleted item.
func (e *Engine) Live(id int) bool {
	e.addMu.Lock()
	defer e.addMu.Unlock()
	return id >= 0 && id < e.next && e.locs[id].local >= 0
}

// Add indexes one item in every backend of its shard and returns its
// global id. Ids are assigned sequentially from 0 in call order (deleted
// ids are never reused). If the code is zero, it is derived from the
// embedding's signs (the model's Code = sign(Embed) convention); an
// explicitly provided code must have one bit per embedding dimension —
// the same convention — so the two representations always describe the
// same item.
func (e *Engine) Add(emb []float64, code hamming.Code) (int, error) {
	if len(emb) == 0 {
		return 0, fmt.Errorf("engine: empty embedding")
	}
	if code.Bits == 0 {
		code = hamming.FromSigns(emb)
	} else if code.Bits != len(emb) {
		return 0, fmt.Errorf("engine: code has %d bits but the embedding has dim %d (the Code = sign(Embed) convention requires one bit per dimension)",
			code.Bits, len(emb))
	}
	e.addMu.Lock()
	defer e.addMu.Unlock()
	// Dimension is an engine-wide invariant, enforced here rather than
	// per backend: with several shards, a drifting add would otherwise
	// land on a still-empty shard whose backends have nothing to compare
	// against. It is pinned only after a fully successful add.
	if e.dim != 0 && len(emb) != e.dim {
		return 0, fmt.Errorf("engine: embedding dim %d, want %d", len(emb), e.dim)
	}
	id := e.next
	si := id % len(e.shards)
	sh := e.shards[si]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if err := addToBackends(sh.backends, emb, code); err != nil {
		return 0, err
	}
	e.dim = len(emb)
	sh.ids = append(sh.ids, id)
	sh.embs = append(sh.embs, emb)
	sh.codes = append(sh.codes, code)
	sh.dead = append(sh.dead, false)
	e.locs = append(e.locs, loc{shard: si, local: len(sh.ids) - 1})
	e.next++
	e.live++
	return id, nil
}

// addToBackends feeds one item to every backend of a shard. A failure on
// the first backend is a clean validation error; a failure after at least
// one backend accepted the item means the shard's backends now disagree,
// which is surfaced loudly (rolling back would require removal support).
func addToBackends(backends []Backend, emb []float64, code hamming.Code) error {
	for i, b := range backends {
		if err := b.Add(emb, code); err != nil {
			if i > 0 {
				return fmt.Errorf("engine: shard inconsistent after partial add: %w", err)
			}
			return err
		}
	}
	return nil
}

// AddBatch indexes a batch, returning the assigned ids. codes may be nil
// (derived from embedding signs).
func (e *Engine) AddBatch(embs [][]float64, codes []hamming.Code) ([]int, error) {
	if codes != nil && len(codes) != len(embs) {
		return nil, fmt.Errorf("engine: %d embeddings but %d codes", len(embs), len(codes))
	}
	ids := make([]int, len(embs))
	for i, emb := range embs {
		var c hamming.Code
		if codes != nil {
			c = codes[i]
		}
		id, err := e.Add(emb, c)
		if err != nil {
			return nil, err
		}
		ids[i] = id
	}
	return ids, nil
}

// backendIndex resolves a backend name to its slot in every shard.
func (e *Engine) backendIndex(name string) (int, error) {
	canonical, err := Resolve(name)
	if err != nil {
		return 0, err
	}
	for i, n := range e.names {
		if n == canonical {
			return i, nil
		}
	}
	return 0, fmt.Errorf("engine: backend %q not maintained by this engine (have %v)", name, e.names)
}

// Search answers a top-k query with the default backend. It is a thin
// wrapper over SearchCtx with a background context: no deadline, and a
// panicking shard silently degrades the answer (use SearchCtx to observe
// the Status).
func (e *Engine) Search(q Query, k int) []Result {
	rs, _ := e.SearchCtx(context.Background(), q, k)
	return rs
}

// SearchWith answers a top-k query with the named backend, fanning out
// across shards in parallel and merging per-shard candidates into the
// exact global top-k by (score, id). Thin wrapper over SearchWithCtx.
func (e *Engine) SearchWith(name string, q Query, k int) ([]Result, error) {
	rs, _, err := e.SearchWithCtx(context.Background(), name, q, k)
	return rs, err
}

// SearchBatch answers many queries with the default backend, parallelized
// across queries by the engine's worker budget. Results are returned in
// query order. Thin wrapper over SearchBatchCtx.
func (e *Engine) SearchBatch(qs []Query, k int) [][]Result {
	rs, _ := e.SearchBatchCtx(context.Background(), qs, k)
	return rs
}

// SearchBatchWith is SearchBatch with an explicit backend. Each worker
// walks the shards of its query sequentially — parallelism comes from
// query-level fan-out, which scales better than nested fan-out when the
// batch is larger than the worker budget. Thin wrapper over
// SearchBatchWithCtx.
func (e *Engine) SearchBatchWith(name string, qs []Query, k int) ([][]Result, error) {
	rs, _, err := e.SearchBatchWithCtx(context.Background(), name, qs, k)
	return rs, err
}

// radiusSearcher is the optional interface of backends that support
// bucket-neighborhood lookups (hamming-hybrid).
type radiusSearcher interface {
	Within(code hamming.Code, radius int) []int
}

// Within returns the global ids whose codes lie within the given Hamming
// radius (0–2) of the query code, sorted ascending. It requires a backend
// supporting radius lookups (hamming-hybrid) among the engine's backends.
// Thin wrapper over WithinCtx.
func (e *Engine) Within(code hamming.Code, radius int) ([]int, error) {
	ids, _, err := e.WithinCtx(context.Background(), code, radius)
	return ids, err
}

// FastPathCount sums the hybrid fast-path counters across shards, or 0 if
// the engine has no hamming-hybrid backend.
func (e *Engine) FastPathCount() int64 {
	var total int64
	for _, sh := range e.shards {
		for _, b := range sh.backends {
			if h, ok := b.(*HammingHybrid); ok {
				total += h.FastPathCount()
			}
		}
	}
	return total
}

// merge is mergeTopK with observability around it: the candidate count
// (total per-shard results entering the merge) and the merge latency are
// recorded separately from the per-shard search work — shard latency is
// measured inside the fan-out worker (searchShard), so a slow shard and
// a slow merge are independently attributable.
func (e *Engine) merge(per [][]Result, k int) []Result {
	if e.met == nil {
		return mergeTopK(per, k)
	}
	var n int
	for _, rs := range per {
		n += len(rs)
	}
	e.met.candidates.Observe(float64(n))
	start := time.Now()
	out := mergeTopK(per, k)
	e.met.mergeLat.Observe(time.Since(start).Seconds())
	return out
}

// mergeTopK merges per-shard top-k lists (each sorted by (score, id))
// into the exact global top-k. Each global winner is necessarily within
// its own shard's top-k, so merging the lists loses nothing.
func mergeTopK(per [][]Result, k int) []Result {
	var n int
	for _, rs := range per {
		n += len(rs)
	}
	all := make([]Result, 0, n)
	for _, rs := range per {
		all = append(all, rs...)
	}
	sort.Slice(all, func(a, b int) bool {
		//lint:ignore floatcompare sort tie-break over stored scores: both operands are the same stored float64s every evaluation, so exact inequality is the determinism contract, not a hazard
		if all[a].Score != all[b].Score {
			return all[a].Score < all[b].Score
		}
		return all[a].ID < all[b].ID
	})
	if len(all) > k {
		all = all[:k]
	}
	return all
}
