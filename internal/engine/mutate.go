package engine

import (
	"context"
	"errors"
	"fmt"

	"traj2hash/internal/hamming"
)

// ErrNotFound marks operations on a global id the engine never assigned.
var ErrNotFound = errors.New("engine: id not found")

// ErrDeleted marks operations on a global id that was assigned and later
// deleted. Deleted ids are never reused, so the two conditions are
// permanently distinguishable.
var ErrDeleted = errors.New("engine: id deleted")

// lookup resolves a global id to its shard under addMu, distinguishing
// never-assigned from deleted.
func (e *Engine) lookup(id int) (loc, error) {
	if id < 0 || id >= e.next {
		return loc{}, fmt.Errorf("%w: %d (ids 0..%d assigned)", ErrNotFound, id, e.next-1)
	}
	l := e.locs[id]
	if l.local < 0 {
		return loc{}, fmt.Errorf("%w: %d", ErrDeleted, id)
	}
	return l, nil
}

// Delete tombstones one item: the id disappears from every subsequent
// Search/Within answer immediately, while its per-shard slot survives
// until compaction reclaims it (backends have no removal primitive — MIH
// buckets and VP-trees do not shrink incrementally). Deleting an already
// deleted id returns ErrDeleted; an id never assigned, ErrNotFound.
//
// When the shard's tombstone density reaches Options.CompactAt the
// delete finishes by compacting that shard synchronously — rebuilding
// its backends over the live items only — so tombstone overhead (the
// k+deadN search over-fetch) stays bounded without a background
// goroutine. Compaction never changes answers, only their cost.
func (e *Engine) Delete(id int) error {
	e.addMu.Lock()
	defer e.addMu.Unlock()
	l, err := e.lookup(id)
	if err != nil {
		return err
	}
	sh := e.shards[l.shard]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	sh.dead[l.local] = true
	sh.deadN++
	e.locs[id] = loc{shard: l.shard, local: -1}
	e.live--
	if e.met != nil {
		e.met.deletes.Inc()
	}
	if e.opts.CompactAt > 0 && float64(sh.deadN) >= e.opts.CompactAt*float64(len(sh.ids)) {
		return e.compactShardLocked(l.shard)
	}
	return nil
}

// Update replaces the item stored under id — embedding and code — in
// place: the global id, its shard, and its position in the shard's
// insertion order are all preserved, which is what keeps the
// deterministic (score, id) tie-break contract intact under mutation.
// The same representation rules as Add apply: a zero code is derived
// from the embedding's signs, an explicit code needs one bit per
// dimension, and the new embedding must keep the item's dimensionality
// (backends are built for a fixed dimension).
func (e *Engine) Update(id int, emb []float64, code hamming.Code) error {
	if len(emb) == 0 {
		return fmt.Errorf("engine: empty embedding")
	}
	if code.Bits == 0 {
		code = hamming.FromSigns(emb)
	} else if code.Bits != len(emb) {
		return fmt.Errorf("engine: code has %d bits but the embedding has dim %d (the Code = sign(Embed) convention requires one bit per dimension)",
			code.Bits, len(emb))
	}
	e.addMu.Lock()
	defer e.addMu.Unlock()
	l, err := e.lookup(id)
	if err != nil {
		return err
	}
	sh := e.shards[l.shard]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if want := len(sh.embs[l.local]); len(emb) != want {
		return fmt.Errorf("engine: update of id %d changes dim %d to %d (updates must keep the item's dimensionality)",
			id, want, len(emb))
	}
	for i, b := range sh.backends {
		if err := b.Update(l.local, emb, code); err != nil {
			if i > 0 {
				return fmt.Errorf("engine: shard inconsistent after partial update: %w", err)
			}
			return err
		}
	}
	sh.embs[l.local] = emb
	sh.codes[l.local] = code
	if e.met != nil {
		e.met.updates.Inc()
	}
	return nil
}

// Compact rebuilds every shard's backends over its live items,
// reclaiming all tombstoned slots at once. Usually unnecessary — Delete
// compacts shards automatically at the Options.CompactAt threshold — but
// available for callers that disabled the automatic trigger or want the
// over-fetch overhead back to zero before a query burst.
func (e *Engine) Compact() error {
	e.addMu.Lock()
	defer e.addMu.Unlock()
	for si := range e.shards {
		if err := e.compactShard(si); err != nil {
			return err
		}
	}
	return nil
}

// compactShard takes shard si's write lock for one compaction pass.
// Callers hold addMu.
func (e *Engine) compactShard(si int) error {
	sh := e.shards[si]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return e.compactShardLocked(si)
}

// compactShardLocked rebuilds shard si over its live items: fresh
// backends are fed the surviving (embedding, code) pairs in id order,
// then swapped in together with the compacted canonical arrays. Global
// ids are never renumbered — only local indices shift, and e.locs is
// remapped to match. Callers hold addMu and the shard's write lock.
//
// Exactness: per-shard results are remapped to global ids before the
// merge, and the merge is by (score, global id) — so the answer set is a
// pure function of the live (id, embedding, code) multiset, which
// compaction preserves. Rebuilding from shard-local canonical storage
// also means compaction needs no engine-wide pause beyond this shard's
// write lock.
func (e *Engine) compactShardLocked(si int) error {
	sh := e.shards[si]
	if sh.deadN == 0 {
		return nil
	}
	backends := make([]Backend, 0, len(e.names))
	for _, n := range e.names {
		b, err := NewBackend(n, e.opts.Config)
		if err != nil {
			return fmt.Errorf("engine: compaction of shard %d: %w", si, err)
		}
		backends = append(backends, b)
	}
	nLive := len(sh.ids) - sh.deadN
	ids := make([]int, 0, nLive)
	embs := make([][]float64, 0, nLive)
	codes := make([]hamming.Code, 0, nLive)
	for local, id := range sh.ids {
		if sh.dead[local] {
			continue
		}
		if err := addToBackends(backends, sh.embs[local], sh.codes[local]); err != nil {
			return fmt.Errorf("engine: compaction of shard %d: %w", si, err)
		}
		e.locs[id] = loc{shard: si, local: len(ids)}
		ids = append(ids, id)
		embs = append(embs, sh.embs[local])
		codes = append(codes, sh.codes[local])
	}
	sh.ids = ids
	sh.embs = embs
	sh.codes = codes
	sh.dead = make([]bool, len(ids))
	sh.deadN = 0
	sh.backends = backends
	if e.met != nil {
		e.met.compactions.Inc()
	}
	return nil
}

// RestoreItem is one surviving item of a restored engine state: its
// original global id plus the canonical representation.
type RestoreItem struct {
	ID   int
	Emb  []float64
	Code hamming.Code
}

// Restore rebuilds an empty engine from a durability snapshot: items
// (strictly ascending by ID) are placed back into the shards their ids
// map to, and next becomes the next id Add will assign. Gaps in the id
// sequence — items deleted before the snapshot — are recorded as
// engine-level tombstones, so Delete/Update on them keep reporting
// ErrDeleted after recovery and ids are still never reused. Because
// placement is id-driven (shard = id mod shards) and insertion follows
// id order, a restored engine answers queries byte-identically to one
// that performed the original mutation history.
//
//det:replayed recovery parity: a restored engine must answer queries byte-identically to the pre-crash engine
func (e *Engine) Restore(next int, items []RestoreItem) error {
	e.addMu.Lock()
	defer e.addMu.Unlock()
	if e.next != 0 {
		return fmt.Errorf("engine: Restore needs an empty engine (has %d ids assigned)", e.next)
	}
	if next < 0 {
		return fmt.Errorf("engine: Restore next %d is negative", next)
	}
	prev := -1
	for _, it := range items {
		if it.ID <= prev {
			return fmt.Errorf("engine: Restore items out of order (%d after %d; ids must be strictly ascending)", it.ID, prev)
		}
		if it.ID >= next {
			return fmt.Errorf("engine: Restore item id %d is not below next %d", it.ID, next)
		}
		prev = it.ID
	}
	e.locs = make([]loc, next)
	for id := 0; id < next; id++ {
		e.locs[id] = loc{shard: id % len(e.shards), local: -1}
	}
	for _, it := range items {
		if err := e.restoreItem(it); err != nil {
			return err
		}
	}
	e.next = next
	return nil
}

// restoreItem places one snapshot item back into the shard its id maps
// to, under that shard's write lock. Callers hold addMu.
//
//det:replayed id-driven placement is what keeps restored shard layouts identical run to run
func (e *Engine) restoreItem(it RestoreItem) error {
	emb, code := it.Emb, it.Code
	if len(emb) == 0 {
		return fmt.Errorf("engine: Restore item %d has an empty embedding", it.ID)
	}
	if code.Bits == 0 {
		code = hamming.FromSigns(emb)
	} else if code.Bits != len(emb) {
		return fmt.Errorf("engine: Restore item %d: code has %d bits but the embedding has dim %d", it.ID, code.Bits, len(emb))
	}
	if e.dim != 0 && len(emb) != e.dim {
		return fmt.Errorf("engine: Restore item %d: embedding dim %d, want %d", it.ID, len(emb), e.dim)
	}
	si := it.ID % len(e.shards)
	sh := e.shards[si]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if err := addToBackends(sh.backends, emb, code); err != nil {
		return fmt.Errorf("engine: Restore item %d: %w", it.ID, err)
	}
	e.dim = len(emb)
	sh.ids = append(sh.ids, it.ID)
	sh.embs = append(sh.embs, emb)
	sh.codes = append(sh.codes, code)
	sh.dead = append(sh.dead, false)
	e.locs[it.ID] = loc{shard: si, local: len(sh.ids) - 1}
	e.live++
	return nil
}

// AddCtx is Add honoring cancellation: a done context fails fast before
// any state changes, so a canceled ingestion never half-applies an item.
func (e *Engine) AddCtx(ctx context.Context, emb []float64, code hamming.Code) (int, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	return e.Add(emb, code)
}

// AddBatchCtx is AddBatch honoring cancellation between appends: the
// context is checked before each item, and on cancellation the ids
// already assigned are returned alongside the context's error — the
// applied prefix, so a durable caller knows exactly what was ingested.
func (e *Engine) AddBatchCtx(ctx context.Context, embs [][]float64, codes []hamming.Code) ([]int, error) {
	if codes != nil && len(codes) != len(embs) {
		return nil, fmt.Errorf("engine: %d embeddings but %d codes", len(embs), len(codes))
	}
	ids := make([]int, 0, len(embs))
	for i, emb := range embs {
		if err := ctx.Err(); err != nil {
			return ids, err
		}
		var c hamming.Code
		if codes != nil {
			c = codes[i]
		}
		id, err := e.Add(emb, c)
		if err != nil {
			return ids, err
		}
		ids = append(ids, id)
	}
	return ids, nil
}
