package engine

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"traj2hash/internal/hamming"
	"traj2hash/internal/obs"
)

// allBackends is every production backend name, in canonical order.
var allBackends = []string{EuclideanBFName, HammingBFName, HammingHybridName, MIHName, VPTreeName}

// mutationScript applies a deterministic Add/Delete/Update workload to e
// and returns the surviving state: live ids ascending, plus the current
// embedding and code of every live id. The script exercises deletes
// scattered across shards, double-mutation of the same id, and updates
// that move items in embedding space.
func mutationScript(t *testing.T, e *Engine, rng *rand.Rand, n, dim int) (liveIDs []int, embs map[int][]float64, codes map[int]hamming.Code) {
	t.Helper()
	embs = map[int][]float64{}
	codes = map[int]hamming.Code{}
	vecs := randVecs(rng, n, dim)
	for i, v := range vecs {
		c := hamming.FromSigns(v)
		id, err := e.Add(v, c)
		if err != nil {
			t.Fatal(err)
		}
		if id != i {
			t.Fatalf("add assigned id %d, want %d", id, i)
		}
		embs[id] = v
		codes[id] = c
	}
	// Delete every 5th item, then update every 7th survivor.
	for id := 0; id < n; id += 5 {
		if err := e.Delete(id); err != nil {
			t.Fatalf("delete %d: %v", id, err)
		}
		delete(embs, id)
		delete(codes, id)
	}
	for id := 0; id < n; id += 7 {
		if _, ok := embs[id]; !ok {
			continue
		}
		v := randVecs(rng, 1, dim)[0]
		c := hamming.FromSigns(v)
		if err := e.Update(id, v, c); err != nil {
			t.Fatalf("update %d: %v", id, err)
		}
		embs[id] = v
		codes[id] = c
	}
	// A second delete wave hits some updated items too.
	for id := 1; id < n; id += 9 {
		if _, ok := embs[id]; !ok {
			continue
		}
		if err := e.Delete(id); err != nil {
			t.Fatalf("delete %d: %v", id, err)
		}
		delete(embs, id)
		delete(codes, id)
	}
	for id := 0; id < n; id++ {
		if _, ok := embs[id]; ok {
			liveIDs = append(liveIDs, id)
		}
	}
	return liveIDs, embs, codes
}

// TestMutatedEngineMatchesFreshBuild is the tentpole parity contract:
// after an arbitrary Add/Delete/Update history, every backend must
// answer exactly like an engine freshly built over the surviving items —
// same ids, same scores, same order, for every query — across shard
// counts and compaction settings (CompactAt -1 keeps all tombstones;
// 0.2 forces several compactions during the script). The fresh engine's
// renumbered ids are mapped back through the ascending live-id list,
// which is a bijection precisely because both sides order ties by
// ascending (global) id.
func TestMutatedEngineMatchesFreshBuild(t *testing.T) {
	const (
		n    = 200
		dim  = 16
		k    = 20
		nQry = 12
	)
	for _, backend := range allBackends {
		for _, shards := range []int{1, 3} {
			//lint:ignore floatcompare exact sentinel values, never computed
			for _, compactAt := range []float64{-1, 0.2} {
				rng := rand.New(rand.NewSource(31))
				e, err := New(Options{Backends: []string{backend}, Shards: shards, Workers: 4, CompactAt: compactAt})
				if err != nil {
					t.Fatal(err)
				}
				liveIDs, embs, codes := mutationScript(t, e, rng, n, dim)
				if e.Len() != len(liveIDs) {
					t.Fatalf("%s shards=%d: Len %d, want %d", backend, shards, e.Len(), len(liveIDs))
				}

				fresh, err := New(Options{Backends: []string{backend}, Shards: shards, Workers: 4})
				if err != nil {
					t.Fatal(err)
				}
				for _, id := range liveIDs {
					if _, err := fresh.Add(embs[id], codes[id]); err != nil {
						t.Fatal(err)
					}
				}

				queries := make([]Query, nQry)
				for i := range queries {
					v := randVecs(rng, 1, dim)[0]
					queries[i] = Query{Emb: v, Code: hamming.FromSigns(v)}
				}
				// Guaranteed ties: query an updated survivor exactly.
				queries[0] = Query{Emb: embs[liveIDs[0]], Code: codes[liveIDs[0]]}

				for qi, q := range queries {
					got := e.Search(q, k)
					want := fresh.Search(q, k)
					if len(got) != len(want) {
						t.Fatalf("%s shards=%d compactAt=%v query %d: len %d vs %d",
							backend, shards, compactAt, qi, len(got), len(want))
					}
					for i := range want {
						wantID := liveIDs[want[i].ID]
						//lint:ignore floatcompare byte-identical parity is the contract under test
						if got[i].ID != wantID || got[i].Score != want[i].Score {
							t.Fatalf("%s shards=%d compactAt=%v query %d rank %d: got %+v, want {ID:%d Score:%v}",
								backend, shards, compactAt, qi, i, got[i], wantID, want[i].Score)
						}
					}
					// No deleted id ever surfaces, at any k.
					for _, r := range e.Search(q, n) {
						if _, live := embs[r.ID]; !live {
							t.Fatalf("%s shards=%d compactAt=%v query %d: deleted id %d surfaced",
								backend, shards, compactAt, qi, r.ID)
						}
					}
				}
			}
		}
	}
}

// TestWithinExcludesDeleted: the radius-lookup path must filter
// tombstones too, before and after compaction.
func TestWithinExcludesDeleted(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	const n, dim = 120, 16
	e, err := New(Options{Backends: []string{HammingHybridName}, Shards: 3, CompactAt: -1})
	if err != nil {
		t.Fatal(err)
	}
	vecs := randVecs(rng, n, dim)
	for _, v := range vecs {
		if _, err := e.Add(v, hamming.FromSigns(v)); err != nil {
			t.Fatal(err)
		}
	}
	victim := 17
	q := hamming.FromSigns(vecs[victim])
	pre, err := e.Within(q, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !containsInt(pre, victim) {
		t.Fatalf("victim %d not in its own radius-2 neighborhood %v", victim, pre)
	}
	if err := e.Delete(victim); err != nil {
		t.Fatal(err)
	}
	post, err := e.Within(q, 2)
	if err != nil {
		t.Fatal(err)
	}
	if containsInt(post, victim) {
		t.Fatalf("deleted id %d still in Within answer %v", victim, post)
	}
	if len(post) != len(pre)-1 {
		t.Fatalf("Within shrank by %d, want 1", len(pre)-len(post))
	}
	if err := e.Compact(); err != nil {
		t.Fatal(err)
	}
	compacted, err := e.Within(q, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !equalInts(compacted, post) {
		t.Fatalf("Within changed across compaction: %v vs %v", compacted, post)
	}
}

func containsInt(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestDeleteUpdateErrors pins the typed-error contract and the liveness
// bookkeeping around it.
func TestDeleteUpdateErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	e, err := New(Options{Backends: allBackends, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	vecs := randVecs(rng, 10, 8)
	for _, v := range vecs {
		if _, err := e.Add(v, hamming.FromSigns(v)); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Delete(42); !errors.Is(err, ErrNotFound) {
		t.Fatalf("delete unknown id: %v, want ErrNotFound", err)
	}
	if err := e.Delete(-1); !errors.Is(err, ErrNotFound) {
		t.Fatalf("delete negative id: %v, want ErrNotFound", err)
	}
	if err := e.Delete(3); err != nil {
		t.Fatal(err)
	}
	if err := e.Delete(3); !errors.Is(err, ErrDeleted) {
		t.Fatalf("double delete: %v, want ErrDeleted", err)
	}
	if err := e.Update(3, vecs[0], hamming.Code{}); !errors.Is(err, ErrDeleted) {
		t.Fatalf("update deleted id: %v, want ErrDeleted", err)
	}
	if err := e.Update(42, vecs[0], hamming.Code{}); !errors.Is(err, ErrNotFound) {
		t.Fatalf("update unknown id: %v, want ErrNotFound", err)
	}
	if err := e.Update(1, []float64{}, hamming.Code{}); err == nil {
		t.Fatal("update with empty embedding accepted")
	}
	if err := e.Update(1, randVecs(rng, 1, 12)[0], hamming.Code{}); err == nil {
		t.Fatal("dimension-changing update accepted")
	}
	mismatched := hamming.FromSigns(randVecs(rng, 1, 6)[0])
	if err := e.Update(1, vecs[1], mismatched); err == nil {
		t.Fatal("update with code/embedding length disagreement accepted")
	}
	if e.Len() != 9 || e.NextID() != 10 {
		t.Fatalf("Len=%d NextID=%d, want 9/10", e.Len(), e.NextID())
	}
	if e.Live(3) || !e.Live(2) || e.Live(10) || e.Live(-2) {
		t.Fatal("Live bookkeeping wrong")
	}
}

// TestAddErrorPathsAllBackends covers the ingestion validation matrix
// for every backend: empty embeddings, dimension drift between adds,
// code/embedding length disagreement, and mismatched batch lengths.
// None of these may mutate the engine.
func TestAddErrorPathsAllBackends(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for _, backend := range allBackends {
		e, err := New(Options{Backends: []string{backend}, Shards: 2})
		if err != nil {
			t.Fatal(err)
		}
		v := randVecs(rng, 1, 8)[0]
		if _, err := e.Add(nil, hamming.Code{}); err == nil {
			t.Fatalf("%s: empty embedding accepted", backend)
		}
		if _, err := e.Add(v, hamming.FromSigns(randVecs(rng, 1, 6)[0])); err == nil {
			t.Fatalf("%s: code/embedding length disagreement accepted", backend)
		}
		if _, err := e.Add(v, hamming.Code{}); err != nil {
			t.Fatalf("%s: valid add rejected: %v", backend, err)
		}
		if _, err := e.Add(randVecs(rng, 1, 12)[0], hamming.Code{}); err == nil {
			t.Fatalf("%s: dimension drift accepted", backend)
		}
		if _, err := e.AddBatch(randVecs(rng, 3, 8), randCodes(rng, 2, 8)); err == nil {
			t.Fatalf("%s: mismatched batch lengths accepted", backend)
		}
		if e.Len() != 1 || e.NextID() != 1 {
			t.Fatalf("%s: failed adds mutated the engine: Len=%d NextID=%d", backend, e.Len(), e.NextID())
		}
	}
}

// TestCompactionThreshold verifies the density trigger: with CompactAt
// 0.5 on one shard, deletes below the threshold keep tombstones, and the
// crossing delete compacts (observed through the compaction counter and
// the post-compaction Update still addressing the right item).
func TestCompactionThreshold(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	reg := obs.New()
	e, err := New(Options{Backends: allBackends, Shards: 1, CompactAt: 0.5, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	const n, dim = 8, 8
	vecs := randVecs(rng, n, dim)
	for _, v := range vecs {
		if _, err := e.Add(v, hamming.FromSigns(v)); err != nil {
			t.Fatal(err)
		}
	}
	counter := func(name string) int64 { return reg.Counter(name).Value() }
	for _, id := range []int{0, 1, 2} { // 3/8 < 0.5: no compaction yet
		if err := e.Delete(id); err != nil {
			t.Fatal(err)
		}
	}
	if got := counter("engine.compactions"); got != 0 {
		t.Fatalf("compactions after 3/8 deletes = %d, want 0", got)
	}
	if err := e.Delete(3); err != nil { // 4/8 reaches the threshold
		t.Fatal(err)
	}
	if got := counter("engine.compactions"); got != 1 {
		t.Fatalf("compactions after threshold delete = %d, want 1", got)
	}
	if got := counter("engine.deletes"); got != 4 {
		t.Fatalf("engine.deletes = %d, want 4", got)
	}
	// Post-compaction, ids still address the same items: updating id 5
	// to match a probe query must surface id 5.
	probe := randVecs(rng, 1, dim)[0]
	if err := e.Update(5, probe, hamming.Code{}); err != nil {
		t.Fatal(err)
	}
	if got := counter("engine.updates"); got != 1 {
		t.Fatalf("engine.updates = %d, want 1", got)
	}
	rs := e.Search(Query{Emb: probe, Code: hamming.FromSigns(probe)}, 1)
	if len(rs) != 1 || rs[0].ID != 5 || rs[0].Score != 0 {
		t.Fatalf("post-compaction self search = %+v, want id 5 at distance 0", rs)
	}
	// Deleted ids stay deleted across compaction.
	if err := e.Delete(0); !errors.Is(err, ErrDeleted) {
		t.Fatalf("post-compaction delete of dead id: %v, want ErrDeleted", err)
	}
}

// TestRestoreRebuildsExactly: Restore over (next, live items) must equal
// the mutated original on every backend, including the tombstone map.
func TestRestoreRebuildsExactly(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	const n, dim, k = 150, 16, 15
	for _, shards := range []int{1, 4} {
		e, err := New(Options{Backends: allBackends, Shards: shards, CompactAt: -1})
		if err != nil {
			t.Fatal(err)
		}
		liveIDs, embs, codes := mutationScript(t, e, rng, n, dim)
		items := make([]RestoreItem, 0, len(liveIDs))
		for _, id := range liveIDs {
			items = append(items, RestoreItem{ID: id, Emb: embs[id], Code: codes[id]})
		}
		r, err := New(Options{Backends: allBackends, Shards: shards, CompactAt: -1})
		if err != nil {
			t.Fatal(err)
		}
		if err := r.Restore(e.NextID(), items); err != nil {
			t.Fatal(err)
		}
		if r.Len() != e.Len() || r.NextID() != e.NextID() {
			t.Fatalf("restored Len/NextID %d/%d, want %d/%d", r.Len(), r.NextID(), e.Len(), e.NextID())
		}
		for id := 0; id < n; id++ {
			if r.Live(id) != e.Live(id) {
				t.Fatalf("restored liveness of %d = %v, original %v", id, r.Live(id), e.Live(id))
			}
		}
		for _, backend := range allBackends {
			for qi := 0; qi < 8; qi++ {
				v := randVecs(rng, 1, dim)[0]
				q := Query{Emb: v, Code: hamming.FromSigns(v)}
				want, err := e.SearchWith(backend, q, k)
				if err != nil {
					t.Fatal(err)
				}
				got, err := r.SearchWith(backend, q, k)
				if err != nil {
					t.Fatal(err)
				}
				if len(got) != len(want) {
					t.Fatalf("%s shards=%d query %d: len %d vs %d", backend, shards, qi, len(got), len(want))
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("%s shards=%d query %d rank %d: restored %+v != original %+v",
							backend, shards, qi, i, got[i], want[i])
					}
				}
			}
		}
		// Restore refuses a non-empty engine and disordered items.
		if err := r.Restore(1, nil); err == nil {
			t.Fatal("Restore on a non-empty engine accepted")
		}
		bad, err := New(Options{Backends: []string{EuclideanBFName}})
		if err != nil {
			t.Fatal(err)
		}
		if err := bad.Restore(n, []RestoreItem{{ID: 5, Emb: embs[liveIDs[0]]}, {ID: 5, Emb: embs[liveIDs[0]]}}); err == nil {
			t.Fatal("Restore with duplicate ids accepted")
		}
	}
}

// TestAddCtx covers the context-aware ingestion variants: a live
// context behaves like Add, a dead one fails fast, and a mid-batch
// cancellation returns exactly the applied prefix.
func TestAddCtx(t *testing.T) {
	rng := rand.New(rand.NewSource(59))
	e, err := New(Options{Backends: []string{EuclideanBFName}, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	v := randVecs(rng, 1, 8)[0]
	if id, err := e.AddCtx(context.Background(), v, hamming.Code{}); err != nil || id != 0 {
		t.Fatalf("AddCtx = (%d, %v), want (0, nil)", id, err)
	}
	canceled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := e.AddCtx(canceled, v, hamming.Code{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("AddCtx on dead context: %v, want context.Canceled", err)
	}
	if e.NextID() != 1 {
		t.Fatalf("dead-context AddCtx mutated the engine: NextID %d", e.NextID())
	}
	ids, err := e.AddBatchCtx(context.Background(), randVecs(rng, 3, 8), nil)
	if err != nil || len(ids) != 3 {
		t.Fatalf("AddBatchCtx = (%v, %v), want 3 ids", ids, err)
	}
	ids, err = e.AddBatchCtx(canceled, randVecs(rng, 3, 8), nil)
	if !errors.Is(err, context.Canceled) || len(ids) != 0 {
		t.Fatalf("AddBatchCtx on dead context = (%v, %v), want empty prefix + context.Canceled", ids, err)
	}
	if _, err := e.AddBatchCtx(context.Background(), randVecs(rng, 2, 8), randCodes(rng, 3, 8)); err == nil {
		t.Fatal("AddBatchCtx with mismatched lengths accepted")
	}
}

// --- benchmarks feeding BENCH_mutable.json (scripts/ci.sh) ---

// benchEngine builds an engine with n seeded items on every production
// backend.
func benchEngine(b *testing.B, n, dim int, compactAt float64) *Engine {
	b.Helper()
	rng := rand.New(rand.NewSource(71))
	e, err := New(Options{Backends: allBackends, Shards: 4, CompactAt: compactAt})
	if err != nil {
		b.Fatal(err)
	}
	for _, v := range randVecs(rng, n, dim) {
		if _, err := e.Add(v, hamming.FromSigns(v)); err != nil {
			b.Fatal(err)
		}
	}
	return e
}

// BenchmarkMutableAdd measures steady-state ingestion across all five
// backends (the per-item cost of the mutable index's write path).
func BenchmarkMutableAdd(b *testing.B) {
	e := benchEngine(b, 1024, 16, -1)
	rng := rand.New(rand.NewSource(73))
	vecs := randVecs(rng, 1024, 16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Add(vecs[i%len(vecs)], hamming.Code{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMutableDelete measures tombstoning with compaction disabled —
// the pure cost of a delete, uncontaminated by rebuilds.
func BenchmarkMutableDelete(b *testing.B) {
	e := benchEngine(b, b.N+1024, 16, -1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := e.Delete(i); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMutableCompaction measures one full compaction of a 2048-item
// engine with half its items tombstoned (per-op cost of the rebuild).
func BenchmarkMutableCompaction(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		e := benchEngine(b, 2048, 16, -1)
		for id := 0; id < 2048; id += 2 {
			if err := e.Delete(id); err != nil {
				b.Fatal(err)
			}
		}
		b.StartTimer()
		if err := e.Compact(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMutableSearchWithTombstones measures the read-path overhead
// of the k+deadN over-fetch at 25% tombstone density.
func BenchmarkMutableSearchWithTombstones(b *testing.B) {
	e := benchEngine(b, 2048, 16, -1)
	for id := 0; id < 2048; id += 4 {
		if err := e.Delete(id); err != nil {
			b.Fatal(err)
		}
	}
	rng := rand.New(rand.NewSource(79))
	v := randVecs(rng, 1, 16)[0]
	q := Query{Emb: v, Code: hamming.FromSigns(v)}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if rs := e.Search(q, 10); len(rs) != 10 {
			b.Fatalf("got %d results", len(rs))
		}
	}
}
