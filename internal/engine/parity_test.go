package engine

import (
	"math/rand"
	"testing"

	"traj2hash/internal/hamming"
)

// TestShardedEngineMatchesSingleBackend is the cross-backend parity
// check: on a seeded dataset, the sharded engine must return exactly the
// ids (and scores) a single unsharded backend instance returns — which is
// also what the legacy internal/search strategies compute, since those
// are adapters over the same backends. Exactness relies on every backend
// breaking distance ties by ascending id (see topk.Select), so this
// doubles as the tie-determinism integration test.
func TestShardedEngineMatchesSingleBackend(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const (
		n    = 400
		dim  = 16
		k    = 25
		nQry = 20
	)
	vecs := randVecs(rng, n, dim)
	codes := make([]hamming.Code, n)
	for i, v := range vecs {
		codes[i] = hamming.FromSigns(v)
	}
	queries := make([]Query, nQry)
	for i := range queries {
		v := randVecs(rng, 1, dim)[0]
		queries[i] = Query{Emb: v, Code: hamming.FromSigns(v)}
	}
	// Include exact-duplicate items so Hamming ties are guaranteed.
	queries[0] = Query{Emb: vecs[3], Code: codes[3]}

	for _, backend := range []string{EuclideanBFName, HammingBFName, HammingHybridName, MIHName, VPTreeName} {
		ref := mustBackend(t, backend, Config{}, vecs, codes)
		for _, shards := range []int{1, 3, 7} {
			e, err := New(Options{Backends: []string{backend}, Shards: shards, Workers: 4})
			if err != nil {
				t.Fatal(err)
			}
			if _, err := e.AddBatch(vecs, codes); err != nil {
				t.Fatal(err)
			}
			for qi, q := range queries {
				want := ref.Search(q, k)
				got := e.Search(q, k)
				if len(got) != len(want) {
					t.Fatalf("%s shards=%d query %d: len %d vs %d", backend, shards, qi, len(got), len(want))
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("%s shards=%d query %d rank %d: engine %+v != backend %+v",
							backend, shards, qi, i, got[i], want[i])
					}
				}
			}
		}
	}
}

// TestHammingBackendsAgree verifies the three Hamming backends are
// interchangeable on results: hamming-bf, hamming-hybrid, and mih all
// return the exact Hamming top-k with ascending-id tie-breaks, so their
// id lists must be identical (the paper's hybrid and the MIH extension
// only trade lookup cost, never answers).
func TestHammingBackendsAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for _, bits := range []int{12, 16, 32} {
		codes := randCodes(rng, 500, bits)
		queries := randCodes(rng, 15, bits)
		queries[0] = codes[9] // guarantee a distance-0 hit and ties

		bf := mustBackend(t, HammingBFName, Config{}, nil, codes)
		hy := mustBackend(t, HammingHybridName, Config{}, nil, codes)
		mih := mustBackend(t, MIHName, Config{}, nil, codes)
		for qi, qc := range queries {
			q := Query{Code: qc}
			want := bf.Search(q, 20)
			for name, be := range map[string]Backend{"hybrid": hy, "mih": mih} {
				got := be.Search(q, 20)
				if len(got) != len(want) {
					t.Fatalf("bits=%d %s query %d: len %d vs %d", bits, name, qi, len(got), len(want))
				}
				for i := range want {
					if got[i].ID != want[i].ID || got[i].Score != want[i].Score {
						t.Fatalf("bits=%d %s query %d rank %d: %+v != bf %+v",
							bits, name, qi, i, got[i], want[i])
					}
				}
			}
		}
	}
}

// TestVPTreeMatchesEuclideanBF: the metric-tree backend must return the
// same ids as the Euclidean scan on tie-free seeded data.
func TestVPTreeMatchesEuclideanBF(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	vecs := randVecs(rng, 300, 8)
	bf := mustBackend(t, EuclideanBFName, Config{}, vecs, nil)
	vp := mustBackend(t, VPTreeName, Config{VPSeed: 42}, vecs, nil)
	for qi := 0; qi < 15; qi++ {
		q := Query{Emb: randVecs(rng, 1, 8)[0]}
		want := bf.Search(q, 10)
		got := vp.Search(q, 10)
		if len(got) != len(want) {
			t.Fatalf("query %d: len %d vs %d", qi, len(got), len(want))
		}
		for i := range want {
			if got[i].ID != want[i].ID {
				t.Fatalf("query %d rank %d: vptree %+v != euclidean %+v", qi, i, got[i], want[i])
			}
			if got[i].Score != want[i].Score {
				t.Fatalf("query %d rank %d: score %v != %v", qi, i, got[i].Score, want[i].Score)
			}
		}
	}
	// Incremental adds invalidate and rebuild the tree.
	extra := randVecs(rng, 1, 8)[0]
	if err := vp.Add(extra, hamming.Code{}); err != nil {
		t.Fatal(err)
	}
	res := vp.Search(Query{Emb: extra}, 1)
	if len(res) != 1 || res[0].ID != 300 || res[0].Score != 0 {
		t.Fatalf("post-add self search = %+v", res)
	}
}
