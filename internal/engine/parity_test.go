package engine

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"traj2hash/internal/hamming"
)

// TestShardedEngineMatchesSingleBackend is the cross-backend parity
// check: on a seeded dataset, the sharded engine must return exactly the
// ids (and scores) a single unsharded backend instance returns — which is
// also what the legacy internal/search strategies compute, since those
// are adapters over the same backends. Exactness relies on every backend
// breaking distance ties by ascending id (see topk.Select), so this
// doubles as the tie-determinism integration test.
func TestShardedEngineMatchesSingleBackend(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const (
		n    = 400
		dim  = 16
		k    = 25
		nQry = 20
	)
	vecs := randVecs(rng, n, dim)
	codes := make([]hamming.Code, n)
	for i, v := range vecs {
		codes[i] = hamming.FromSigns(v)
	}
	queries := make([]Query, nQry)
	for i := range queries {
		v := randVecs(rng, 1, dim)[0]
		queries[i] = Query{Emb: v, Code: hamming.FromSigns(v)}
	}
	// Include exact-duplicate items so Hamming ties are guaranteed.
	queries[0] = Query{Emb: vecs[3], Code: codes[3]}

	for _, backend := range []string{EuclideanBFName, HammingBFName, HammingHybridName, MIHName, VPTreeName} {
		ref := mustBackend(t, backend, Config{}, vecs, codes)
		for _, shards := range []int{1, 3, 7} {
			e, err := New(Options{Backends: []string{backend}, Shards: shards, Workers: 4})
			if err != nil {
				t.Fatal(err)
			}
			if _, err := e.AddBatch(vecs, codes); err != nil {
				t.Fatal(err)
			}
			for qi, q := range queries {
				want := ref.Search(q, k)
				got := e.Search(q, k)
				if len(got) != len(want) {
					t.Fatalf("%s shards=%d query %d: len %d vs %d", backend, shards, qi, len(got), len(want))
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("%s shards=%d query %d rank %d: engine %+v != backend %+v",
							backend, shards, qi, i, got[i], want[i])
					}
				}
			}
		}
	}
}

// TestHammingBackendsAgree verifies the three Hamming backends are
// interchangeable on results: hamming-bf, hamming-hybrid, and mih all
// return the exact Hamming top-k with ascending-id tie-breaks, so their
// id lists must be identical (the paper's hybrid and the MIH extension
// only trade lookup cost, never answers).
func TestHammingBackendsAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for _, bits := range []int{12, 16, 32} {
		codes := randCodes(rng, 500, bits)
		queries := randCodes(rng, 15, bits)
		queries[0] = codes[9] // guarantee a distance-0 hit and ties

		bf := mustBackend(t, HammingBFName, Config{}, nil, codes)
		hy := mustBackend(t, HammingHybridName, Config{}, nil, codes)
		mih := mustBackend(t, MIHName, Config{}, nil, codes)
		for qi, qc := range queries {
			q := Query{Code: qc}
			want := bf.Search(q, 20)
			for name, be := range map[string]Backend{"hybrid": hy, "mih": mih} {
				got := be.Search(q, 20)
				if len(got) != len(want) {
					t.Fatalf("bits=%d %s query %d: len %d vs %d", bits, name, qi, len(got), len(want))
				}
				for i := range want {
					if got[i].ID != want[i].ID || got[i].Score != want[i].Score {
						t.Fatalf("bits=%d %s query %d rank %d: %+v != bf %+v",
							bits, name, qi, i, got[i], want[i])
					}
				}
			}
		}
	}
}

// TestVPTreeMatchesEuclideanBF: the metric-tree backend must return the
// same ids as the Euclidean scan on tie-free seeded data.
func TestVPTreeMatchesEuclideanBF(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	vecs := randVecs(rng, 300, 8)
	bf := mustBackend(t, EuclideanBFName, Config{}, vecs, nil)
	vp := mustBackend(t, VPTreeName, Config{VPSeed: 42}, vecs, nil)
	for qi := 0; qi < 15; qi++ {
		q := Query{Emb: randVecs(rng, 1, 8)[0]}
		want := bf.Search(q, 10)
		got := vp.Search(q, 10)
		if len(got) != len(want) {
			t.Fatalf("query %d: len %d vs %d", qi, len(got), len(want))
		}
		for i := range want {
			if got[i].ID != want[i].ID {
				t.Fatalf("query %d rank %d: vptree %+v != euclidean %+v", qi, i, got[i], want[i])
			}
			if got[i].Score != want[i].Score {
				t.Fatalf("query %d rank %d: score %v != %v", qi, i, got[i].Score, want[i].Score)
			}
		}
	}
	// Incremental adds invalidate and rebuild the tree.
	extra := randVecs(rng, 1, 8)[0]
	if err := vp.Add(extra, hamming.Code{}); err != nil {
		t.Fatal(err)
	}
	res := vp.Search(Query{Emb: extra}, 1)
	if len(res) != 1 || res[0].ID != 300 || res[0].Score != 0 {
		t.Fatalf("post-add self search = %+v", res)
	}
}

// TestEngineEdgeCasesAllBackends sweeps the degenerate-query corners for
// every registered backend behind a sharded engine: non-positive k, an
// empty engine, k exceeding the corpus, and a context canceled before
// any shard runs. These are the inputs the failure-domain contract
// (DESIGN.md "Failure semantics & graceful degradation") pins down:
// empty answers that need no shard work are Complete, and a dead context
// yields an incomplete Status with zero shards consulted.
func TestEngineEdgeCasesAllBackends(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	const (
		n   = 30
		dim = 16
	)
	vecs := randVecs(rng, n, dim)
	codes := make([]hamming.Code, n)
	for i, v := range vecs {
		codes[i] = hamming.FromSigns(v)
	}
	qv := randVecs(rng, 1, dim)[0]
	q := Query{Emb: qv, Code: hamming.FromSigns(qv)}

	for _, backend := range BackendNames() {
		for _, shards := range []int{1, 3} {
			mk := func(empty bool) *Engine {
				e, err := New(Options{Backends: []string{backend}, Shards: shards, Workers: 2})
				if err != nil {
					t.Fatal(err)
				}
				if !empty {
					if _, err := e.AddBatch(vecs, codes); err != nil {
						t.Fatal(err)
					}
				}
				return e
			}

			// k <= 0: exact empty answer, no shard work, Complete.
			e := mk(false)
			for _, k := range []int{0, -3} {
				rs, st := e.SearchCtx(context.Background(), q, k)
				if len(rs) != 0 {
					t.Errorf("%s shards=%d k=%d: %d results, want 0", backend, shards, k, len(rs))
				}
				if !st.Complete || st.Err != nil {
					t.Errorf("%s shards=%d k=%d: status %+v, want Complete", backend, shards, k, st)
				}
			}

			// Empty engine: every shard answers (emptily), so Complete.
			rs, st := mk(true).SearchCtx(context.Background(), q, 5)
			if len(rs) != 0 {
				t.Errorf("%s shards=%d empty engine: %d results, want 0", backend, shards, len(rs))
			}
			if !st.Complete {
				t.Errorf("%s shards=%d empty engine: status %+v, want Complete", backend, shards, st)
			}

			// k > corpus: every item comes back, still Complete.
			rs, st = e.SearchCtx(context.Background(), q, n+50)
			if len(rs) != n {
				t.Errorf("%s shards=%d k>n: %d results, want %d", backend, shards, len(rs), n)
			}
			if !st.Complete {
				t.Errorf("%s shards=%d k>n: status %+v, want Complete", backend, shards, st)
			}
			seen := map[int]bool{}
			for _, r := range rs {
				seen[r.ID] = true
			}
			if len(seen) != n {
				t.Errorf("%s shards=%d k>n: %d distinct ids, want %d", backend, shards, len(seen), n)
			}

			// Context canceled before the fan-out starts: no shard is
			// consulted, the answer is empty and incomplete, and the
			// status carries the context error.
			ctx, cancel := context.WithCancel(context.Background())
			cancel()
			rs, st = e.SearchCtx(ctx, q, 5)
			if len(rs) != 0 {
				t.Errorf("%s shards=%d canceled: %d results, want 0", backend, shards, len(rs))
			}
			if st.Complete || st.ShardsOK != 0 || st.ShardsFailed != 0 {
				t.Errorf("%s shards=%d canceled: status %+v, want incomplete with no shards consulted", backend, shards, st)
			}
			if !errors.Is(st.Err, context.Canceled) {
				t.Errorf("%s shards=%d canceled: err %v, want context.Canceled", backend, shards, st.Err)
			}

			// The batch path under a dead context: per-query statuses all
			// incomplete.
			_, sts := e.SearchBatchCtx(ctx, []Query{q, q, q}, 5)
			for qi, s := range sts {
				if s.Complete {
					t.Errorf("%s shards=%d canceled batch query %d: status %+v, want incomplete", backend, shards, qi, s)
				}
			}
		}
	}
}
