// Package engine is the unified serving layer of the library: a pluggable
// Backend interface over the five top-k search strategies (Euclidean
// brute force, Hamming brute force, Hamming-Hybrid table lookup,
// multi-index hashing, and a vantage-point tree), a registry that makes
// them selectable by name, and a sharded, concurrency-safe Engine that
// partitions the database across shards and fans queries out in parallel.
//
// Every consumer of top-k search — the public Index facade, the
// internal/search strategy adapters used by the efficiency experiments,
// and the CLI search subcommand — goes through the same backends, so a
// benchmark of one is a benchmark of all.
package engine

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"traj2hash/internal/hamming"
	"traj2hash/internal/topk"
)

// Query carries both learned representations of an encoded query: the
// Euclidean-space embedding and the Hamming-space code. Backends read the
// representation they index; the other may be left zero.
type Query struct {
	Emb  []float64
	Code hamming.Code
}

// Result is one search hit: the item id and its score under the backend
// that produced it (squared Euclidean distance for euclidean-bf and
// vptree, Hamming distance for the Hamming backends — smaller is more
// similar in all cases). Backends return results sorted ascending by
// (Score, ID), which makes every backend deterministic under ties and is
// what lets the sharded Engine merge shard results exactly.
type Result struct {
	ID    int
	Score float64
}

// Backend is one pluggable top-k search strategy over an item collection.
// Items get local ids 0,1,2,… in insertion order; Update replaces an
// item's representation under its existing local id, so the id order
// (and with it the deterministic tie-break contract) survives mutation.
// Deletion is NOT a backend concern: the Engine overlays a tombstone
// bitmap on the local id space and filters on the search paths, then
// rebuilds backends wholesale at compaction (see engine Delete/Compact).
//
// Backends are NOT goroutine-safe by themselves: the Engine (or any other
// caller) must serialize Add/Update against Search. Concurrent Searches
// are safe.
type Backend interface {
	// Name returns the registry name of the strategy.
	Name() string
	// Add appends one item. The embedding and code must be consistent
	// with previously added items (same dimension / bit length).
	Add(emb []float64, code hamming.Code) error
	// Update replaces the item stored under local id in place, keeping
	// its id and insertion-order position. The new embedding and code
	// must be consistent with the collection (same dimension / bit
	// length); an out-of-range id is an error.
	Update(local int, emb []float64, code hamming.Code) error
	// Search returns the top-k local ids for the query, sorted ascending
	// by (Score, ID).
	Search(q Query, k int) []Result
	// Len returns the number of indexed items.
	Len() int
}

// Config carries backend construction parameters.
type Config struct {
	// Bits is the hash code length. 0 means infer from the first Add.
	Bits int
	// MIHChunks is the substring count of the mih backend. 0 picks a
	// default (4, widened if needed so every chunk fits in 64 bits).
	MIHChunks int
	// VPSeed seeds vantage-point sampling of the vptree backend.
	VPSeed int64
	// Hooks is an opaque configuration slot for test-instrumentation
	// backends: internal/faultinject's "faulty" backend reads its fault
	// schedule (*faultinject.Faults) from here. Production backends
	// ignore it, and it must never carry request-scoped state — in
	// particular not a context.Context.
	Hooks any
}

// Factory builds a fresh, empty backend.
type Factory func(cfg Config) (Backend, error)

// Canonical backend names.
const (
	EuclideanBFName   = "euclidean-bf"
	HammingBFName     = "hamming-bf"
	HammingHybridName = "hamming-hybrid"
	MIHName           = "mih"
	VPTreeName        = "vptree"
)

var (
	regMu    sync.RWMutex
	registry = map[string]Factory{}
	aliases  = map[string]string{
		"hamming-mih": MIHName,
		"vp-tree":     VPTreeName,
	}
)

// Register makes a backend constructible by name. It panics on duplicate
// registration, mirroring database/sql.Register.
func Register(name string, f Factory) {
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("engine: duplicate backend %q", name))
	}
	registry[name] = f
}

// Resolve canonicalizes a backend name, following aliases.
func Resolve(name string) (string, error) {
	regMu.RLock()
	defer regMu.RUnlock()
	if a, ok := aliases[name]; ok {
		name = a
	}
	if _, ok := registry[name]; !ok {
		return "", fmt.Errorf("engine: unknown backend %q (have %v)", name, backendNamesLocked())
	}
	return name, nil
}

// NewBackend builds a fresh backend by registry name.
func NewBackend(name string, cfg Config) (Backend, error) {
	canonical, err := Resolve(name)
	if err != nil {
		return nil, err
	}
	//lint:ignore deferunlock the factory below must run outside the registry lock: a factory that registers (or resolves) would deadlock under defer
	regMu.RLock()
	f := registry[canonical]
	regMu.RUnlock()
	return f(cfg)
}

// BackendNames returns the registered backend names, sorted.
func BackendNames() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	return backendNamesLocked()
}

func backendNamesLocked() []string {
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

func init() {
	Register(EuclideanBFName, func(cfg Config) (Backend, error) {
		return &EuclideanBF{}, nil
	})
	Register(HammingBFName, func(cfg Config) (Backend, error) {
		return &HammingBF{bits: cfg.Bits}, nil
	})
	Register(HammingHybridName, func(cfg Config) (Backend, error) {
		return &HammingHybrid{bits: cfg.Bits}, nil
	})
	Register(MIHName, func(cfg Config) (Backend, error) {
		return &MIHBackend{bits: cfg.Bits, chunks: cfg.MIHChunks}, nil
	})
	Register(VPTreeName, func(cfg Config) (Backend, error) {
		return &VPTreeBackend{seed: cfg.VPSeed}, nil
	})
}

// --- euclidean-bf ---

// EuclideanBF scans all embeddings with squared Euclidean distance — the
// paper's Euclidean-BF strategy: exact over the learned space, highest
// accuracy, linear cost.
type EuclideanBF struct {
	embs [][]float64
}

// Name implements Backend.
func (b *EuclideanBF) Name() string { return EuclideanBFName }

// Len implements Backend.
func (b *EuclideanBF) Len() int { return len(b.embs) }

// Add implements Backend.
func (b *EuclideanBF) Add(emb []float64, _ hamming.Code) error {
	if len(emb) == 0 {
		return fmt.Errorf("engine: %s needs a non-empty embedding", EuclideanBFName)
	}
	if len(b.embs) > 0 && len(emb) != len(b.embs[0]) {
		return fmt.Errorf("engine: embedding dim %d, want %d", len(emb), len(b.embs[0]))
	}
	b.embs = append(b.embs, emb)
	return nil
}

// Update implements Backend.
func (b *EuclideanBF) Update(local int, emb []float64, _ hamming.Code) error {
	if local < 0 || local >= len(b.embs) {
		return fmt.Errorf("engine: %s update of unknown id %d (have %d)", EuclideanBFName, local, len(b.embs))
	}
	if len(emb) != len(b.embs[local]) {
		return fmt.Errorf("engine: embedding dim %d, want %d", len(emb), len(b.embs[local]))
	}
	b.embs[local] = emb
	return nil
}

// Search implements Backend.
func (b *EuclideanBF) Search(q Query, k int) []Result {
	if len(q.Emb) == 0 {
		return nil
	}
	items := topk.Select(len(b.embs), k, func(i int) float64 {
		return sqDist(q.Emb, b.embs[i])
	})
	return itemsToResults(items)
}

func sqDist(a, b []float64) float64 {
	var sum float64
	for j := range a {
		d := a[j] - b[j]
		sum += d * d
	}
	return sum
}

// --- hamming-bf ---

// HammingBF scans all binary codes with popcount Hamming distance — the
// paper's Hamming-BF strategy, ~2× faster than the Euclidean scan.
type HammingBF struct {
	bits  int
	table *hamming.Table
}

// Name implements Backend.
func (b *HammingBF) Name() string { return HammingBFName }

// Len implements Backend.
func (b *HammingBF) Len() int {
	if b.table == nil {
		return 0
	}
	return b.table.Len()
}

// Add implements Backend.
func (b *HammingBF) Add(_ []float64, code hamming.Code) error {
	t, err := addToTable(&b.table, b.bits, code)
	if err != nil {
		return err
	}
	b.table = t
	return nil
}

// Update implements Backend.
func (b *HammingBF) Update(local int, _ []float64, code hamming.Code) error {
	return updateTable(b.table, HammingBFName, local, code)
}

// Search implements Backend.
func (b *HammingBF) Search(q Query, k int) []Result {
	if b.table == nil || q.Code.Bits == 0 {
		return nil
	}
	return neighborsToResults(b.table.BruteForce(q.Code, k))
}

// Table exposes the underlying hash table (for the internal/search
// adapters and diagnostics).
func (b *HammingBF) Table() *hamming.Table { return b.table }

// addToTable lazily creates the table on the first insert and validates
// the bit length against want (0 = infer).
func addToTable(tp **hamming.Table, want int, code hamming.Code) (*hamming.Table, error) {
	if code.Bits == 0 {
		return nil, fmt.Errorf("engine: hamming backend needs a non-empty code")
	}
	if want > 0 && code.Bits != want {
		return nil, fmt.Errorf("engine: code has %d bits, backend wants %d", code.Bits, want)
	}
	if *tp == nil {
		return hamming.NewTable([]hamming.Code{code})
	}
	if _, err := (*tp).Add(code); err != nil {
		return nil, err
	}
	return *tp, nil
}

// updateTable validates and applies an in-place code replacement on a
// lazily-created table (nil = nothing was ever added, so any id is
// unknown).
func updateTable(t *hamming.Table, name string, local int, code hamming.Code) error {
	if code.Bits == 0 {
		return fmt.Errorf("engine: %s needs a non-empty code", name)
	}
	if t == nil {
		return fmt.Errorf("engine: %s update of unknown id %d (empty backend)", name, local)
	}
	return t.Update(local, code)
}

// --- hamming-hybrid ---

// HammingHybrid is the paper's Section V-E hybrid strategy: radius-2
// table lookup when the neighborhood holds at least k items, brute-force
// scan otherwise. Its results equal Hamming-BF exactly (both are the true
// Hamming top-k with ascending-id tie-breaks); only the cost differs.
type HammingHybrid struct {
	bits      int
	table     *hamming.Table
	fastPaths atomic.Int64
}

// Name implements Backend.
func (b *HammingHybrid) Name() string { return HammingHybridName }

// Len implements Backend.
func (b *HammingHybrid) Len() int {
	if b.table == nil {
		return 0
	}
	return b.table.Len()
}

// Add implements Backend.
func (b *HammingHybrid) Add(_ []float64, code hamming.Code) error {
	t, err := addToTable(&b.table, b.bits, code)
	if err != nil {
		return err
	}
	b.table = t
	return nil
}

// Update implements Backend.
func (b *HammingHybrid) Update(local int, _ []float64, code hamming.Code) error {
	return updateTable(b.table, HammingHybridName, local, code)
}

// Search implements Backend.
func (b *HammingHybrid) Search(q Query, k int) []Result {
	if b.table == nil || q.Code.Bits == 0 {
		return nil
	}
	ns, fast := b.table.Hybrid(q.Code, k)
	if fast {
		b.fastPaths.Add(1)
	}
	return neighborsToResults(ns)
}

// FastPathCount returns how many searches were answered via table lookup
// rather than the brute-force fallback. Safe to read concurrently.
func (b *HammingHybrid) FastPathCount() int64 { return b.fastPaths.Load() }

// Within returns the local ids within the given Hamming radius (0–2) of
// the code, sorted ascending — the bucket-neighborhood primitive behind
// Index.Within.
func (b *HammingHybrid) Within(code hamming.Code, radius int) []int {
	if b.table == nil {
		return nil
	}
	ids := append([]int(nil), b.table.LookupRadius(code, radius)...)
	sort.Ints(ids)
	return ids
}

// Table exposes the underlying hash table.
func (b *HammingHybrid) Table() *hamming.Table { return b.table }

// --- mih ---

// MIHBackend searches with multi-index hashing (Norouzi et al.): the code
// is split into chunks, each indexed separately, and candidates are
// generated by the pigeonhole principle — sublinear on long codes where
// whole-code radius expansion scans mostly empty buckets.
type MIHBackend struct {
	bits   int
	chunks int
	idx    *hamming.MIH
}

// Name implements Backend.
func (b *MIHBackend) Name() string { return MIHName }

// Len implements Backend.
func (b *MIHBackend) Len() int {
	if b.idx == nil {
		return 0
	}
	return b.idx.Len()
}

// Add implements Backend.
func (b *MIHBackend) Add(_ []float64, code hamming.Code) error {
	if code.Bits == 0 {
		return fmt.Errorf("engine: %s needs a non-empty code", MIHName)
	}
	if b.bits > 0 && code.Bits != b.bits {
		return fmt.Errorf("engine: code has %d bits, backend wants %d", code.Bits, b.bits)
	}
	if b.idx == nil {
		chunks := b.chunks
		if chunks <= 0 {
			chunks = defaultMIHChunks(code.Bits)
		}
		idx, err := hamming.NewMIH([]hamming.Code{code}, chunks)
		if err != nil {
			return err
		}
		b.idx = idx
		return nil
	}
	_, err := b.idx.Add(code)
	return err
}

// Update implements Backend.
func (b *MIHBackend) Update(local int, _ []float64, code hamming.Code) error {
	if code.Bits == 0 {
		return fmt.Errorf("engine: %s needs a non-empty code", MIHName)
	}
	if b.idx == nil {
		return fmt.Errorf("engine: %s update of unknown id %d (empty backend)", MIHName, local)
	}
	return b.idx.Update(local, code)
}

// defaultMIHChunks picks 4 substrings, widened when the code is too long
// for 64-bit chunk words and narrowed for very short codes.
func defaultMIHChunks(bits int) int {
	chunks := 4
	if chunks > bits {
		chunks = bits
	}
	for (bits+chunks-1)/chunks > 64 {
		chunks++
	}
	return chunks
}

// Search implements Backend.
func (b *MIHBackend) Search(q Query, k int) []Result {
	if b.idx == nil || q.Code.Bits == 0 {
		return nil
	}
	return neighborsToResults(b.idx.Search(q.Code, k))
}

// MIH exposes the underlying multi-index (for the internal/search
// adapters and diagnostics).
func (b *MIHBackend) MIH() *hamming.MIH { return b.idx }

// --- vptree ---

// VPTreeBackend answers exact Euclidean k-NN with a vantage-point tree
// over the embeddings — triangle-inequality pruning instead of a linear
// scan. The tree is rebuilt lazily on the first Search after an Add
// (vantage-point trees do not insert incrementally), so bulk-load-then-
// search workloads pay one build.
type VPTreeBackend struct {
	seed int64
	vecs [][]float64

	// mu guards the lazy rebuild: concurrent Searches may race to build
	// the tree; Add (serialized against Search by the Engine) invalidates
	// it. The tree itself is immutable once built.
	mu   sync.Mutex
	tree *VPTree
}

// Name implements Backend.
func (b *VPTreeBackend) Name() string { return VPTreeName }

// Len implements Backend.
func (b *VPTreeBackend) Len() int { return len(b.vecs) }

// Add implements Backend.
func (b *VPTreeBackend) Add(emb []float64, _ hamming.Code) error {
	if len(emb) == 0 {
		return fmt.Errorf("engine: %s needs a non-empty embedding", VPTreeName)
	}
	if len(b.vecs) > 0 && len(emb) != len(b.vecs[0]) {
		return fmt.Errorf("engine: embedding dim %d, want %d", len(emb), len(b.vecs[0]))
	}
	b.vecs = append(b.vecs, emb)
	b.mu.Lock()
	defer b.mu.Unlock()
	b.tree = nil
	return nil
}

// Update implements Backend. The tree is invalidated and rebuilt lazily
// on the next Search, like Add.
func (b *VPTreeBackend) Update(local int, emb []float64, _ hamming.Code) error {
	if local < 0 || local >= len(b.vecs) {
		return fmt.Errorf("engine: %s update of unknown id %d (have %d)", VPTreeName, local, len(b.vecs))
	}
	if len(emb) != len(b.vecs[local]) {
		return fmt.Errorf("engine: embedding dim %d, want %d", len(emb), len(b.vecs[local]))
	}
	b.vecs[local] = emb
	b.mu.Lock()
	defer b.mu.Unlock()
	b.tree = nil
	return nil
}

func (b *VPTreeBackend) ensure() *VPTree {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.tree == nil {
		t, err := NewVPTree(b.vecs, b.seed)
		if err != nil {
			return nil // unreachable: Add validated dims and vecs non-empty
		}
		b.tree = t
	}
	return b.tree
}

// Search implements Backend. Scores are squared Euclidean distances,
// matching the euclidean-bf backend.
func (b *VPTreeBackend) Search(q Query, k int) []Result {
	if len(b.vecs) == 0 || len(q.Emb) == 0 || k <= 0 {
		return nil
	}
	tree := b.ensure()
	if tree == nil {
		return nil
	}
	ids, _ := tree.Search(q.Emb, k)
	out := make([]Result, len(ids))
	for i, id := range ids {
		out[i] = Result{ID: id, Score: sqDist(q.Emb, b.vecs[id])}
	}
	return out
}

// --- shared conversions ---

func itemsToResults(items []topk.Item) []Result {
	out := make([]Result, len(items))
	for i, it := range items {
		out[i] = Result{ID: it.ID, Score: it.Dist}
	}
	return out
}

func neighborsToResults(ns []hamming.Neighbor) []Result {
	out := make([]Result, len(ns))
	for i, n := range ns {
		out[i] = Result{ID: n.ID, Score: float64(n.Distance)}
	}
	return out
}
