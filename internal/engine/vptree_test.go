package engine

import (
	"math/rand"
	"testing"
)

func TestVPTreeExactness(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 10; trial++ {
		n := 50 + rng.Intn(300)
		vecs := randVecs(rng, n, 8)
		tree, err := NewVPTree(vecs, int64(trial))
		if err != nil {
			t.Fatal(err)
		}
		q := make([]float64, 8)
		for i := range q {
			q[i] = rng.NormFloat64()
		}
		k := 1 + rng.Intn(20)
		got, _ := tree.Search(q, k)

		bf := mustBackend(t, EuclideanBFName, Config{}, vecs, nil)
		want := bf.Search(Query{Emb: q}, k)
		if len(got) != len(want) {
			t.Fatalf("trial %d: len %d vs %d", trial, len(got), len(want))
		}
		d2 := func(id int) float64 {
			var s float64
			for j := range q {
				d := q[j] - vecs[id][j]
				s += d * d
			}
			return s
		}
		for i := range want {
			if d2(got[i]) != d2(want[i].ID) {
				t.Fatalf("trial %d rank %d: vp %v vs bf %v", trial, i, d2(got[i]), d2(want[i].ID))
			}
		}
	}
}

func TestVPTreePrunes(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	// Clustered data: pruning should examine well under the full set.
	n := 4000
	vecs := make([][]float64, n)
	for i := range vecs {
		center := float64(i%8) * 40
		v := make([]float64, 8)
		for j := range v {
			v[j] = center + rng.NormFloat64()
		}
		vecs[i] = v
	}
	tree, err := NewVPTree(vecs, 3)
	if err != nil {
		t.Fatal(err)
	}
	q := append([]float64(nil), vecs[17]...)
	_, visited := tree.Search(q, 10)
	if visited >= n {
		t.Errorf("no pruning: visited %d of %d", visited, n)
	}
	if visited > n/2 {
		t.Errorf("weak pruning on clustered data: visited %d of %d", visited, n)
	}
}

func TestVPTreeErrors(t *testing.T) {
	if _, err := NewVPTree(nil, 1); err == nil {
		t.Error("empty accepted")
	}
	if _, err := NewVPTree([][]float64{{1, 2}, {1}}, 1); err == nil {
		t.Error("ragged accepted")
	}
	tree, _ := NewVPTree([][]float64{{1, 2}}, 1)
	defer func() {
		if recover() == nil {
			t.Error("wrong query dim should panic")
		}
	}()
	tree.Search([]float64{1}, 1)
}

func TestVPTreeSingleAndTiny(t *testing.T) {
	tree, err := NewVPTree([][]float64{{5, 5}}, 1)
	if err != nil {
		t.Fatal(err)
	}
	ids, _ := tree.Search([]float64{0, 0}, 3)
	if len(ids) != 1 || ids[0] != 0 {
		t.Errorf("ids = %v", ids)
	}
}
