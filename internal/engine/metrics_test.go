package engine

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"traj2hash/internal/hamming"
	"traj2hash/internal/obs"
)

// newInstrumentedEngine builds an engine over euclidean-bf with n random
// items, returning the engine and its registry (nil reg = uninstrumented).
func newInstrumentedEngine(t testing.TB, reg *obs.Registry, shards, n, d int) *Engine {
	t.Helper()
	e, err := New(Options{
		Backends: []string{EuclideanBFName},
		Shards:   shards,
		Metrics:  reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	for _, v := range randVecs(rng, n, d) {
		if _, err := e.Add(v, hamming.FromSigns(v)); err != nil {
			t.Fatal(err)
		}
	}
	return e
}

func TestEngineMetricsRecordSearches(t *testing.T) {
	reg := obs.New()
	e := newInstrumentedEngine(t, reg, 3, 60, 8)
	q := Query{Emb: make([]float64, 8)}
	for i := 0; i < 5; i++ {
		rs, st := e.SearchCtx(context.Background(), q, 10)
		if !st.Complete || len(rs) != 10 {
			t.Fatalf("query %d: complete=%v len=%d", i, st.Complete, len(rs))
		}
	}
	s := reg.Snapshot()
	if got := s.Counters["engine.search.total"]; got != 5 {
		t.Fatalf("engine.search.total = %d, want 5", got)
	}
	if got := s.Counters["search.degraded"]; got != 0 {
		t.Fatalf("search.degraded = %d, want 0", got)
	}
	if got := s.Counters["engine.shard.panics"]; got != 0 {
		t.Fatalf("engine.shard.panics = %d, want 0", got)
	}
	// Every shard answered every query: 5 observations per shard histogram.
	for si := 0; si < 3; si++ {
		name := fmt.Sprintf("engine.shard.seconds.%s.%d", EuclideanBFName, si)
		h, ok := s.Histograms[name]
		if !ok {
			t.Fatalf("missing histogram %s (have %v)", name, reg.Names())
		}
		if h.Count != 5 {
			t.Fatalf("%s count = %d, want 5", name, h.Count)
		}
	}
	if h := s.Histograms["engine.merge.seconds"]; h.Count != 5 {
		t.Fatalf("engine.merge.seconds count = %d, want 5", h.Count)
	}
	// Candidates: 3 shards × top-10 each = 30 per query.
	if h := s.Histograms["engine.search.candidates"]; h.Count != 5 || h.Sum != 150 {
		t.Fatalf("engine.search.candidates count=%d sum=%v, want 5/150", h.Count, h.Sum)
	}
	// One span per query.
	spans := reg.Tracer().Spans()
	if len(spans) != 5 {
		t.Fatalf("got %d spans, want 5", len(spans))
	}
	if spans[0].Name != "engine.search."+EuclideanBFName {
		t.Fatalf("span name = %q", spans[0].Name)
	}
}

func TestEngineMetricsDegradedOnCanceledContext(t *testing.T) {
	reg := obs.New()
	e := newInstrumentedEngine(t, reg, 2, 20, 4)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, st := e.SearchCtx(ctx, Query{Emb: make([]float64, 4)}, 5)
	if st.Complete {
		t.Fatal("pre-canceled context should yield an incomplete status")
	}
	if got := reg.Snapshot().Counters["search.degraded"]; got != 1 {
		t.Fatalf("search.degraded = %d, want 1", got)
	}

	// Batch path: every skipped query counts as asked-and-degraded.
	qs := []Query{{Emb: make([]float64, 4)}, {Emb: make([]float64, 4)}}
	_, sts := e.SearchBatchCtx(ctx, qs, 5)
	for i, s := range sts {
		if s.Complete {
			t.Fatalf("batch query %d should be incomplete", i)
		}
	}
	snap := reg.Snapshot()
	if got := snap.Counters["search.degraded"]; got != 3 {
		t.Fatalf("search.degraded after batch = %d, want 3", got)
	}
	if got := snap.Counters["engine.search.total"]; got != 3 {
		t.Fatalf("engine.search.total = %d, want 3", got)
	}
}

func TestEngineUninstrumentedHasNoMetricsState(t *testing.T) {
	e := newInstrumentedEngine(t, nil, 2, 20, 4)
	if e.met != nil {
		t.Fatal("nil Options.Metrics should leave the engine uninstrumented")
	}
	// The no-op path must still answer correctly.
	rs, st := e.SearchCtx(context.Background(), Query{Emb: make([]float64, 4)}, 5)
	if !st.Complete || len(rs) != 5 {
		t.Fatalf("uninstrumented search: complete=%v len=%d", st.Complete, len(rs))
	}
}

// benchSearchBatch drives SearchBatch over a 3-shard euclidean engine —
// the BENCH_obs overhead guard: the Metrics variant must stay within 5%
// of NoMetrics (see scripts/ci.sh and DESIGN.md "Observability").
func benchSearchBatch(b *testing.B, reg *obs.Registry) {
	e := newInstrumentedEngine(b, reg, 3, 2000, 16)
	rng := rand.New(rand.NewSource(11))
	qs := make([]Query, 32)
	for i := range qs {
		v := make([]float64, 16)
		for j := range v {
			v[j] = rng.NormFloat64()
		}
		qs[i] = Query{Emb: v}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.SearchBatch(qs, 10)
	}
}

func BenchmarkSearchBatchNoMetrics(b *testing.B) { benchSearchBatch(b, nil) }
func BenchmarkSearchBatchMetrics(b *testing.B)   { benchSearchBatch(b, obs.New()) }
