// Package search implements the three top-k search strategies compared in
// the efficiency study (Section V-E):
//
//   - EuclideanBF — brute-force scan over dense embeddings with Euclidean
//     distance, then sort;
//   - HammingBF — brute-force scan over binary codes with Hamming distance;
//   - HammingHybrid — table lookup within Hamming radius 2, falling back to
//     the brute-force scan when fewer than k candidates are found.
//
// All strategies return database indices; the caller evaluates them against
// exact ground truth with package eval.
package search

import (
	"fmt"

	"traj2hash/internal/hamming"
	"traj2hash/internal/topk"
)

// Searcher returns the ids of the k nearest database items to a query.
// Queries are addressed by a prepared query index so each strategy can use
// its own representation (dense vector or binary code).
type Searcher interface {
	// Name identifies the strategy in reports ("Euclidean-BF", ...).
	Name() string
	// Search returns the top-k database ids for prepared query qi.
	Search(qi, k int) []int
}

// EuclideanBF scans all database embeddings per query.
type EuclideanBF struct {
	DB      [][]float64 // database embeddings
	Queries [][]float64 // query embeddings
}

// NewEuclideanBF validates dimensions and builds the strategy.
func NewEuclideanBF(db, queries [][]float64) (*EuclideanBF, error) {
	if len(db) == 0 || len(queries) == 0 {
		return nil, fmt.Errorf("search: empty database or query set")
	}
	d := len(db[0])
	for i, v := range db {
		if len(v) != d {
			return nil, fmt.Errorf("search: db vector %d has dim %d, want %d", i, len(v), d)
		}
	}
	for i, v := range queries {
		if len(v) != d {
			return nil, fmt.Errorf("search: query vector %d has dim %d, want %d", i, len(v), d)
		}
	}
	return &EuclideanBF{DB: db, Queries: queries}, nil
}

// Name implements Searcher.
func (s *EuclideanBF) Name() string { return "Euclidean-BF" }

// Search implements Searcher. Selection is O(n log k) via a bounded heap,
// so the float distance computation dominates — the property the Figure
// 5/6 comparison of Euclidean versus Hamming scanning measures.
func (s *EuclideanBF) Search(qi, k int) []int {
	q := s.Queries[qi]
	items := topk.Select(len(s.DB), k, func(i int) float64 {
		v := s.DB[i]
		var sum float64
		for j := range q {
			diff := q[j] - v[j]
			sum += diff * diff
		}
		return sum
	})
	out := make([]int, len(items))
	for i, it := range items {
		out[i] = it.ID
	}
	return out
}

// HammingBF scans all database codes per query.
type HammingBF struct {
	Table   *hamming.Table
	Queries []hamming.Code
}

// NewHammingBF indexes the database codes.
func NewHammingBF(db, queries []hamming.Code) (*HammingBF, error) {
	t, err := hamming.NewTable(db)
	if err != nil {
		return nil, err
	}
	return &HammingBF{Table: t, Queries: queries}, nil
}

// Name implements Searcher.
func (s *HammingBF) Name() string { return "Hamming-BF" }

// Search implements Searcher.
func (s *HammingBF) Search(qi, k int) []int {
	ns := s.Table.BruteForce(s.Queries[qi], k)
	return ids(ns)
}

// HammingHybrid uses radius-2 table lookup with brute-force fallback.
type HammingHybrid struct {
	Table   *hamming.Table
	Queries []hamming.Code

	// FastPathCount counts queries answered via table lookup, for the
	// Figure 5/6 analysis of when the hybrid degenerates to Hamming-BF.
	FastPathCount int
}

// NewHammingHybrid indexes the database codes.
func NewHammingHybrid(db, queries []hamming.Code) (*HammingHybrid, error) {
	t, err := hamming.NewTable(db)
	if err != nil {
		return nil, err
	}
	return &HammingHybrid{Table: t, Queries: queries}, nil
}

// Name implements Searcher.
func (s *HammingHybrid) Name() string { return "Hamming-Hybrid" }

// Search implements Searcher.
func (s *HammingHybrid) Search(qi, k int) []int {
	ns, fast := s.Table.Hybrid(s.Queries[qi], k)
	if fast {
		s.FastPathCount++
	}
	return ids(ns)
}

// HammingMIH searches with a multi-index hashing table — an extension
// beyond the paper's radius-2 strategy that stays sublinear on long codes
// (see hamming.MIH).
type HammingMIH struct {
	Index   *hamming.MIH
	Queries []hamming.Code
}

// NewHammingMIH indexes the database codes with the given chunk count.
func NewHammingMIH(db, queries []hamming.Code, chunks int) (*HammingMIH, error) {
	idx, err := hamming.NewMIH(db, chunks)
	if err != nil {
		return nil, err
	}
	return &HammingMIH{Index: idx, Queries: queries}, nil
}

// Name implements Searcher.
func (s *HammingMIH) Name() string { return "Hamming-MIH" }

// Search implements Searcher.
func (s *HammingMIH) Search(qi, k int) []int {
	return ids(s.Index.Search(s.Queries[qi], k))
}

func ids(ns []hamming.Neighbor) []int {
	out := make([]int, len(ns))
	for i, n := range ns {
		out[i] = n.ID
	}
	return out
}

// RunAll executes every query against a strategy, returning the id lists.
func RunAll(s Searcher, numQueries, k int) [][]int {
	out := make([][]int, numQueries)
	for i := 0; i < numQueries; i++ {
		out[i] = s.Search(i, k)
	}
	return out
}
