// Package search holds the top-k search strategies compared in the
// efficiency study (Section V-E), exposed in the batch-of-prepared-queries
// shape the experiment harness consumes:
//
//   - EuclideanBF — brute-force scan over dense embeddings with Euclidean
//     distance;
//   - HammingBF — brute-force scan over binary codes with Hamming distance;
//   - HammingHybrid — table lookup within Hamming radius 2, falling back to
//     the brute-force scan when fewer than k candidates are found;
//   - HammingMIH — multi-index hashing (an extension beyond the paper).
//
// Since the query-engine refactor, every strategy here is a thin adapter
// over the corresponding internal/engine backend, so the efficiency
// experiments and the CLI exercise exactly the code that serves production
// queries through the public Index. All strategies return database
// indices; the caller evaluates them against exact ground truth with
// package eval.
package search

import (
	"fmt"

	"traj2hash/internal/engine"
	"traj2hash/internal/hamming"
)

// Searcher returns the ids of the k nearest database items to a query.
// Queries are addressed by a prepared query index so each strategy can use
// its own representation (dense vector or binary code).
type Searcher interface {
	// Name identifies the strategy in reports ("Euclidean-BF", ...).
	Name() string
	// Search returns the top-k database ids for prepared query qi.
	Search(qi, k int) []int
}

// EuclideanBF scans all database embeddings per query via the engine's
// euclidean-bf backend.
type EuclideanBF struct {
	DB      [][]float64 // database embeddings
	Queries [][]float64 // query embeddings

	be engine.Backend
}

// NewEuclideanBF validates dimensions and builds the strategy.
func NewEuclideanBF(db, queries [][]float64) (*EuclideanBF, error) {
	if len(db) == 0 || len(queries) == 0 {
		return nil, fmt.Errorf("search: empty database or query set")
	}
	d := len(db[0])
	for i, v := range queries {
		if len(v) != d {
			return nil, fmt.Errorf("search: query vector %d has dim %d, want %d", i, len(v), d)
		}
	}
	be, err := engine.NewBackend(engine.EuclideanBFName, engine.Config{})
	if err != nil {
		return nil, err
	}
	for i, v := range db {
		if err := be.Add(v, hamming.Code{}); err != nil {
			return nil, fmt.Errorf("search: db vector %d: %w", i, err)
		}
	}
	return &EuclideanBF{DB: db, Queries: queries, be: be}, nil
}

// Name implements Searcher.
func (s *EuclideanBF) Name() string { return "Euclidean-BF" }

// Search implements Searcher. Selection is O(n log k) via a bounded heap,
// so the float distance computation dominates — the property the Figure
// 5/6 comparison of Euclidean versus Hamming scanning measures.
func (s *EuclideanBF) Search(qi, k int) []int {
	return ids(s.be.Search(engine.Query{Emb: s.Queries[qi]}, k))
}

// HammingBF scans all database codes per query via the engine's
// hamming-bf backend.
type HammingBF struct {
	Table   *hamming.Table
	Queries []hamming.Code

	be engine.Backend
}

// NewHammingBF indexes the database codes.
func NewHammingBF(db, queries []hamming.Code) (*HammingBF, error) {
	be, err := newHammingBackend(engine.HammingBFName, db, engine.Config{})
	if err != nil {
		return nil, err
	}
	return &HammingBF{Table: be.(*engine.HammingBF).Table(), Queries: queries, be: be}, nil
}

// Name implements Searcher.
func (s *HammingBF) Name() string { return "Hamming-BF" }

// Search implements Searcher.
func (s *HammingBF) Search(qi, k int) []int {
	return ids(s.be.Search(engine.Query{Code: s.Queries[qi]}, k))
}

// HammingHybrid uses radius-2 table lookup with brute-force fallback via
// the engine's hamming-hybrid backend.
type HammingHybrid struct {
	Table   *hamming.Table
	Queries []hamming.Code

	// FastPathCount counts queries answered via table lookup, for the
	// Figure 5/6 analysis of when the hybrid degenerates to Hamming-BF.
	FastPathCount int

	be *engine.HammingHybrid
}

// NewHammingHybrid indexes the database codes.
func NewHammingHybrid(db, queries []hamming.Code) (*HammingHybrid, error) {
	be, err := newHammingBackend(engine.HammingHybridName, db, engine.Config{})
	if err != nil {
		return nil, err
	}
	hb := be.(*engine.HammingHybrid)
	return &HammingHybrid{Table: hb.Table(), Queries: queries, be: hb}, nil
}

// Name implements Searcher.
func (s *HammingHybrid) Name() string { return "Hamming-Hybrid" }

// Search implements Searcher.
func (s *HammingHybrid) Search(qi, k int) []int {
	before := s.be.FastPathCount()
	out := ids(s.be.Search(engine.Query{Code: s.Queries[qi]}, k))
	if s.be.FastPathCount() > before {
		s.FastPathCount++
	}
	return out
}

// HammingMIH searches with a multi-index hashing table — an extension
// beyond the paper's radius-2 strategy that stays sublinear on long codes
// (see hamming.MIH) — via the engine's mih backend.
type HammingMIH struct {
	Index   *hamming.MIH
	Queries []hamming.Code

	be engine.Backend
}

// NewHammingMIH indexes the database codes with the given chunk count.
func NewHammingMIH(db, queries []hamming.Code, chunks int) (*HammingMIH, error) {
	be, err := newHammingBackend(engine.MIHName, db, engine.Config{MIHChunks: chunks})
	if err != nil {
		return nil, err
	}
	return &HammingMIH{Index: be.(*engine.MIHBackend).MIH(), Queries: queries, be: be}, nil
}

// Name implements Searcher.
func (s *HammingMIH) Name() string { return "Hamming-MIH" }

// Search implements Searcher.
func (s *HammingMIH) Search(qi, k int) []int {
	return ids(s.be.Search(engine.Query{Code: s.Queries[qi]}, k))
}

// newHammingBackend builds a code-indexed backend over a non-empty set.
func newHammingBackend(name string, db []hamming.Code, cfg engine.Config) (engine.Backend, error) {
	if len(db) == 0 {
		return nil, fmt.Errorf("search: empty code set")
	}
	be, err := engine.NewBackend(name, cfg)
	if err != nil {
		return nil, err
	}
	for i, c := range db {
		if err := be.Add(nil, c); err != nil {
			return nil, fmt.Errorf("search: code %d: %w", i, err)
		}
	}
	return be, nil
}

func ids(rs []engine.Result) []int {
	out := make([]int, len(rs))
	for i, r := range rs {
		out[i] = r.ID
	}
	return out
}

// VPTree re-exports the engine's vantage-point tree, which predates the
// engine package and moved there with the query-engine refactor.
type VPTree = engine.VPTree

// NewVPTree builds a vantage-point tree over the vectors; see
// engine.NewVPTree.
func NewVPTree(vectors [][]float64, seed int64) (*VPTree, error) {
	return engine.NewVPTree(vectors, seed)
}

// RunAll executes every query against a strategy, returning the id lists.
func RunAll(s Searcher, numQueries, k int) [][]int {
	out := make([][]int, numQueries)
	for i := 0; i < numQueries; i++ {
		out[i] = s.Search(i, k)
	}
	return out
}
