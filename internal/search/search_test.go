package search

import (
	"math/rand"
	"testing"

	"traj2hash/internal/hamming"
)

func randVecs(rng *rand.Rand, n, d int) [][]float64 {
	out := make([][]float64, n)
	for i := range out {
		v := make([]float64, d)
		for j := range v {
			v[j] = rng.NormFloat64()
		}
		out[i] = v
	}
	return out
}

func randCodes(rng *rand.Rand, n, bits int) []hamming.Code {
	out := make([]hamming.Code, n)
	for i := range out {
		v := make([]float64, bits)
		for j := range v {
			v[j] = rng.NormFloat64()
		}
		out[i] = hamming.FromSigns(v)
	}
	return out
}

func TestEuclideanBFExactness(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	db := randVecs(rng, 50, 8)
	qs := randVecs(rng, 5, 8)
	s, err := NewEuclideanBF(db, qs)
	if err != nil {
		t.Fatal(err)
	}
	if s.Name() != "Euclidean-BF" {
		t.Errorf("Name = %q", s.Name())
	}
	got := s.Search(0, 5)
	// Verify against manual scan.
	best := -1
	bestD := 1e18
	for i, v := range db {
		var sum float64
		for j := range v {
			d := qs[0][j] - v[j]
			sum += d * d
		}
		if sum < bestD {
			bestD = sum
			best = i
		}
	}
	if got[0] != best {
		t.Errorf("nearest = %d, want %d", got[0], best)
	}
	// Sorted by increasing distance.
	dist := func(id int) float64 {
		var sum float64
		for j := range db[id] {
			d := qs[0][j] - db[id][j]
			sum += d * d
		}
		return sum
	}
	for i := 1; i < len(got); i++ {
		if dist(got[i]) < dist(got[i-1]) {
			t.Error("results not sorted")
		}
	}
}

func TestEuclideanBFValidation(t *testing.T) {
	if _, err := NewEuclideanBF(nil, nil); err == nil {
		t.Error("empty accepted")
	}
	if _, err := NewEuclideanBF([][]float64{{1, 2}}, [][]float64{{1}}); err == nil {
		t.Error("dim mismatch accepted")
	}
	if _, err := NewEuclideanBF([][]float64{{1, 2}, {1}}, [][]float64{{1, 2}}); err == nil {
		t.Error("ragged db accepted")
	}
}

func TestEuclideanBFClampsK(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	s, _ := NewEuclideanBF(randVecs(rng, 5, 4), randVecs(rng, 1, 4))
	if got := s.Search(0, 100); len(got) != 5 {
		t.Errorf("len = %d", len(got))
	}
}

func TestHammingBFMatchesTable(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	db := randCodes(rng, 80, 32)
	qs := randCodes(rng, 4, 32)
	s, err := NewHammingBF(db, qs)
	if err != nil {
		t.Fatal(err)
	}
	if s.Name() != "Hamming-BF" {
		t.Errorf("Name = %q", s.Name())
	}
	got := s.Search(1, 7)
	want := s.Table.BruteForce(qs[1], 7)
	for i := range want {
		if got[i] != want[i].ID {
			t.Fatalf("got %v", got)
		}
	}
}

func TestHammingHybridFastPathCounting(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	// Dense 8-bit codes: fast path should dominate.
	db := randCodes(rng, 400, 8)
	qs := randCodes(rng, 10, 8)
	s, err := NewHammingHybrid(db, qs)
	if err != nil {
		t.Fatal(err)
	}
	if s.Name() != "Hamming-Hybrid" {
		t.Errorf("Name = %q", s.Name())
	}
	res := RunAll(s, len(qs), 5)
	if len(res) != 10 || len(res[0]) != 5 {
		t.Fatalf("shape = %dx%d", len(res), len(res[0]))
	}
	if s.FastPathCount == 0 {
		t.Error("fast path never used on dense codes")
	}
}

func TestHammingHybridSparseFallsBack(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	db := randCodes(rng, 30, 64)
	qs := randCodes(rng, 3, 64)
	s, _ := NewHammingHybrid(db, qs)
	RunAll(s, 3, 10)
	if s.FastPathCount != 0 {
		t.Error("fast path on sparse 64-bit codes")
	}
	// Fallback results equal Hamming-BF.
	bf, _ := NewHammingBF(db, qs)
	for qi := 0; qi < 3; qi++ {
		a := s.Search(qi, 10)
		b := bf.Search(qi, 10)
		for i := range a {
			if a[i] != b[i] {
				t.Fatal("fallback differs from BF")
			}
		}
	}
}

func TestHammingMIHSearcher(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	db := randCodes(rng, 300, 16)
	qs := randCodes(rng, 4, 16)
	s, err := NewHammingMIH(db, qs, 4)
	if err != nil {
		t.Fatal(err)
	}
	if s.Name() != "Hamming-MIH" {
		t.Errorf("Name = %q", s.Name())
	}
	bf, _ := NewHammingBF(db, qs)
	for qi := range qs {
		got := s.Search(qi, 10)
		want := bf.Search(qi, 10)
		if len(got) != len(want) {
			t.Fatalf("len %d vs %d", len(got), len(want))
		}
		// Dense 16-bit codes: MIH is exact, distances must match.
		for i := range want {
			dg := hamming.Distance(qs[qi], db[got[i]])
			dw := hamming.Distance(qs[qi], db[want[i]])
			if dg != dw {
				t.Fatalf("query %d rank %d: %d vs %d", qi, i, dg, dw)
			}
		}
	}
	if _, err := NewHammingMIH(nil, qs, 4); err == nil {
		t.Error("empty db accepted")
	}
}

func TestSearchersAgreeOnIdenticalItem(t *testing.T) {
	// Insert the query itself into the database: every strategy must rank
	// it first.
	rng := rand.New(rand.NewSource(6))
	vecs := randVecs(rng, 20, 16)
	q := vecs[7]
	e, _ := NewEuclideanBF(vecs, [][]float64{q})
	if got := e.Search(0, 1); got[0] != 7 {
		t.Errorf("EuclideanBF self = %v", got)
	}
	codes := randCodes(rng, 20, 16)
	qc := codes[7]
	hb, _ := NewHammingBF(codes, []hamming.Code{qc})
	if got := hb.Search(0, 1); got[0] != 7 {
		t.Errorf("HammingBF self = %v", got)
	}
	hh, _ := NewHammingHybrid(codes, []hamming.Code{qc})
	if got := hh.Search(0, 1); got[0] != 7 {
		t.Errorf("HammingHybrid self = %v", got)
	}
}
