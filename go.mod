module traj2hash

go 1.22
