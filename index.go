package traj2hash

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"

	"traj2hash/internal/engine"
	"traj2hash/internal/hamming"
	"traj2hash/internal/obs"
	"traj2hash/internal/wal"
)

// Typed mutation errors, re-exported from the engine: Delete/Update on
// an id the index never assigned reports ErrNotFound; on an id that was
// assigned and later deleted, ErrDeleted (ids are never reused, so the
// two stay distinguishable forever). Test with errors.Is.
var (
	ErrNotFound = engine.ErrNotFound
	ErrDeleted  = engine.ErrDeleted
)

// ErrClosed is returned by Add/AddBatch/Delete/Update after Close has
// released a durable index's WAL: once the log handle is gone a mutation
// could only succeed in memory while silently breaking the durability
// promise, so the whole mutation is refused instead. Queries keep
// working. Test with errors.Is.
var ErrClosed = errors.New("traj2hash: index closed")

// Status reports how completely a context-aware query was answered — the
// failure-domain contract of the query engine (DESIGN.md "Failure
// semantics & graceful degradation"). A query never blocks past its
// context and never crashes the process: a panicking shard backend
// degrades the answer into a smaller result set, and an expired deadline
// returns whatever shards answered in time. Complete is true iff the
// results are the exact full answer; otherwise Err carries the joined
// per-shard failures and/or the context error.
type Status = engine.Status

// Result is one search hit: the database id and the score under the
// backend that produced it (squared Euclidean distance for the Euclidean
// backends; Hamming distance for the Hamming backends — smaller is more
// similar in both cases).
type Result struct {
	ID    int
	Score float64
}

// The search backends selectable through Options.Backend (and the CLI
// -strategy flag). The first three are the paper's Section V-E
// strategies; MIH and VPTree are the library's sublinear extensions.
const (
	BackendEuclideanBF   = engine.EuclideanBFName   // exact scan over embeddings
	BackendHammingBF     = engine.HammingBFName     // popcount scan over codes
	BackendHammingHybrid = engine.HammingHybridName // radius-2 lookup w/ scan fallback
	BackendMIH           = engine.MIHName           // multi-index hashing
	BackendVPTree        = engine.VPTreeName        // vantage-point tree
)

// Backends returns the names of all registered search backends, sorted.
func Backends() []string { return engine.BackendNames() }

// Options configures an Index. The zero value is valid: Hamming-Hybrid
// search on a single shard with GOMAXPROCS workers.
type Options struct {
	// Backend selects the strategy used by Search/SearchBatch; see the
	// Backend* constants. Empty means BackendHammingHybrid. The
	// strategy-specific methods (SearchEuclidean, SearchHamming,
	// SearchHybrid) remain available regardless of this choice.
	Backend string
	// Shards partitions the database; queries fan out across shards in
	// parallel and adds only lock one shard. ≤ 0 means 1.
	Shards int
	// Workers bounds the index's parallelism: batch embedding, the
	// per-query shard fan-out, and the SearchBatch query fan-out.
	// ≤ 0 means GOMAXPROCS.
	Workers int
	// MIHChunks is the substring count of the MIH backend (0 = auto).
	MIHChunks int
	// VPTreeSeed seeds vantage-point sampling of the VPTree backend.
	VPTreeSeed int64
	// Metrics, when non-nil, is the observability registry the index's
	// query engine records into (search counters, per-shard latency
	// histograms, spans — see DESIGN.md "Observability"). nil leaves the
	// engine entirely uninstrumented; Stats then reports an empty
	// snapshot. Several indexes may share one registry (counters
	// accumulate), including DefaultMetricsRegistry().
	Metrics *MetricsRegistry
	// CompactAt is the per-shard tombstone-density threshold at which a
	// Delete triggers a synchronous compaction of its shard (backends are
	// rebuilt over the live items). 0 means the engine default (0.25);
	// negative disables automatic compaction. Compaction never changes
	// answers, only their cost.
	CompactAt float64
	// WALDir, when non-empty, makes the index durable: every mutation
	// (Add/Delete/Update) is appended to a CRC-checksummed write-ahead
	// log in this directory before its call returns, snapshots are taken
	// every SnapshotEvery mutations, and NewIndexWith recovers whatever a
	// previous run left there — loading the latest snapshot, replaying
	// the log tail, and truncating a torn final record. Empty disables
	// durability entirely (a purely in-memory index).
	WALDir string
	// SnapshotEvery is the snapshot cadence in logged mutations (0 = the
	// wal default of 1024; negative disables cadence snapshots). Smaller
	// values bound recovery replay at the cost of more snapshot writes.
	SnapshotEvery int
	// WALSyncEvery is the group-fsync interval of the log: the WAL is
	// fsynced after every WALSyncEvery mutations (0 or 1 = every mutation
	// durable before its call returns). Larger values trade the
	// durability of the last few mutations for ingest throughput.
	WALSyncEvery int

	// walFS overrides the durability layer's filesystem — the seam the
	// fault-injected crash-recovery tests use. Nil means the real
	// filesystem; production code has no reason to set it.
	walFS wal.VFS
}

// RecoveryInfo describes what NewIndexWith found in Options.WALDir.
type RecoveryInfo struct {
	// Recovered reports whether the directory held evidence of a prior
	// run: restored state (a snapshot and/or intact log records), or a
	// torn record that recovery truncated. A clean fresh directory — and
	// one a previous run opened and closed without ever mutating — is the
	// only Recovered == false case.
	Recovered bool
	// FromSnapshot counts items loaded from the snapshot.
	FromSnapshot int
	// Replayed counts log-tail records re-applied after the snapshot.
	Replayed int
	// TornTail reports whether the log ended in a torn (incomplete or
	// checksum-failing) record that recovery truncated — the signature
	// of a crash mid-append.
	TornTail bool
}

// Index is a searchable trajectory database: it stores each trajectory's
// Euclidean-space embedding and Hamming-space code and answers top-k
// similar-trajectory queries with any registered search backend. It is a
// thin facade over the sharded internal query engine and is safe for
// concurrent use: any number of goroutines may Add and Search at once
// (training the encoder concurrently is not).
type Index struct {
	enc  Encoder
	opts Options
	eng  *engine.Engine

	mu     sync.RWMutex // guards trajs, embs, the store, and closed
	trajs  []Trajectory // indexed by global id; nil at deleted ids
	embs   [][]float64  // indexed by global id; nil at deleted ids
	store  *wal.Store   // nil when Options.WALDir is empty
	closed bool         // set by Close on a durable index; mutations fail with ErrClosed
	rec    RecoveryInfo
}

// NewIndex embeds and indexes the given trajectories with an encoder
// (e.g. a trained Model, or any other registered Encoder kind) and
// default Options. At least one trajectory is required; use Add or
// AddBatch for subsequent insertions.
func NewIndex(enc Encoder, ts []Trajectory) (*Index, error) {
	if len(ts) == 0 {
		return nil, fmt.Errorf("traj2hash: empty initial database")
	}
	return NewIndexWith(enc, ts, Options{})
}

// NewIndexWith embeds and indexes the given trajectories (which may be
// empty) with explicit Options. The initial batch is embedded in parallel
// across opts.Workers goroutines.
//
// With Options.WALDir set, the directory's prior state is recovered
// first (snapshot + log-tail replay; see RecoveryInfo). The initial
// batch then only seeds an EMPTY index: when recovery restored any
// items, ts is ignored — otherwise every restart of a process that
// passes its dataset here would re-index it on top of the recovered
// copy. Use Recovery to observe which path was taken, and Close to
// release the durability layer when done.
func NewIndexWith(enc Encoder, ts []Trajectory, opts Options) (*Index, error) {
	if enc == nil {
		return nil, fmt.Errorf("traj2hash: nil encoder")
	}
	backend := opts.Backend
	if backend == "" {
		backend = BackendHammingHybrid
	}
	eng, err := engine.New(engine.Options{
		// The configured backend serves Search/SearchBatch; the three
		// paper strategies are always maintained (the scans cost only a
		// slice header each; the hybrid table also serves Within).
		Backends:  []string{backend, BackendEuclideanBF, BackendHammingBF, BackendHammingHybrid},
		Shards:    opts.Shards,
		Workers:   opts.Workers,
		CompactAt: opts.CompactAt,
		Metrics:   opts.Metrics,
		Config: engine.Config{
			Bits:      enc.Dim(),
			MIHChunks: opts.MIHChunks,
			VPSeed:    opts.VPTreeSeed,
		},
	})
	if err != nil {
		return nil, err
	}
	ix := &Index{enc: enc, opts: opts, eng: eng}
	if opts.WALDir != "" {
		if err := ix.openWAL(); err != nil {
			return nil, err
		}
	}
	// The seed batch only applies when recovery restored no state at all.
	// The engine's id sequence is the authority here, not
	// RecoveryInfo.Recovered: a directory whose only record was torn (and
	// truncated) counts as recovered-from-a-crash yet holds nothing, so it
	// still seeds — while a restored snapshot whose every item was later
	// deleted restores an empty-but-advanced id space and must not.
	if ix.eng.NextID() > 0 {
		return ix, nil
	}
	if _, err := ix.AddBatch(ts); err != nil {
		//lint:ignore errcheck the batch error takes precedence over the store cleanup close
		ix.Close()
		return nil, err
	}
	return ix, nil
}

// Recovery reports what NewIndexWith found in Options.WALDir (the zero
// RecoveryInfo for an in-memory index or a fresh directory).
func (ix *Index) Recovery() RecoveryInfo { return ix.rec }

// Add embeds and indexes one more trajectory, returning its id.
func (ix *Index) Add(t Trajectory) (int, error) {
	emb := ix.enc.Embed(t)
	ix.mu.Lock()
	defer ix.mu.Unlock()
	return ix.add(t, emb)
}

// AddBatch embeds (in parallel, across the index's worker budget) and
// indexes a batch of trajectories, returning their ids.
func (ix *Index) AddBatch(ts []Trajectory) ([]int, error) {
	if len(ts) == 0 {
		return nil, nil
	}
	embs := ix.enc.EmbedAllParallel(ts, ix.opts.Workers)
	ix.mu.Lock()
	defer ix.mu.Unlock()
	ids := make([]int, len(ts))
	for i, t := range ts {
		id, err := ix.add(t, embs[i])
		if err != nil {
			return nil, err
		}
		ids[i] = id
	}
	return ids, nil
}

// add indexes one embedded trajectory and logs it durably when a WAL is
// configured; callers hold ix.mu, which keeps the engine's sequential
// ids aligned with ix.trajs/ix.embs positions.
func (ix *Index) add(t Trajectory, emb []float64) (int, error) {
	if ix.closed {
		return 0, ErrClosed
	}
	code := hamming.FromSigns(emb)
	id, err := ix.eng.Add(emb, code)
	if err != nil {
		return 0, err
	}
	ix.trajs = append(ix.trajs, t)
	ix.embs = append(ix.embs, emb)
	if err := ix.logMutation(wal.Record{Op: wal.OpAdd, ID: id, Emb: emb, Code: code, Traj: flattenTraj(t)}); err != nil {
		return 0, err
	}
	return id, nil
}

// Len returns the number of live (non-deleted) indexed trajectories.
func (ix *Index) Len() int { return ix.eng.Len() }

// Trajectory returns the indexed trajectory with the given id. The
// boolean is false — with a zero trajectory — when id is out of range or
// was deleted; it never panics and never returns stale post-delete data.
func (ix *Index) Trajectory(id int) (Trajectory, bool) {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	if !ix.eng.Live(id) {
		return nil, false
	}
	return ix.trajs[id], true
}

// Embedding returns the stored Euclidean-space embedding of id. The
// boolean is false when id is out of range or was deleted.
func (ix *Index) Embedding(id int) ([]float64, bool) {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	if !ix.eng.Live(id) {
		return nil, false
	}
	return ix.embs[id], true
}

// Backend returns the name of the backend serving Search/SearchBatch.
func (ix *Index) Backend() string { return ix.eng.Backends()[0] }

// Encoder returns the encoder the index embeds and hashes with.
func (ix *Index) Encoder() Encoder { return ix.enc }

// Search returns the k most similar trajectories under the configured
// backend (Options.Backend). The query is embedded on the fly; to
// amortize encoding over repeated searches, embed once with the encoder
// and use SearchByVec.
func (ix *Index) Search(q Trajectory, k int) []Result {
	return ix.SearchByVec(ix.enc.Embed(q), k)
}

// SearchByVec is Search with a precomputed query embedding (from
// Encoder.Embed). The Hamming code is derived from the embedding's signs,
// so one forward pass serves every backend.
func (ix *Index) SearchByVec(qe []float64, k int) []Result {
	return toResults(ix.eng.Search(engine.Query{Emb: qe, Code: hamming.FromSigns(qe)}, k))
}

// SearchBatch answers many queries under the configured backend,
// embedding the queries in parallel (nn.ForwardParallel under the hood)
// and fanning the searches out across the index's worker budget. Results
// are in query order.
func (ix *Index) SearchBatch(qs []Trajectory, k int) [][]Result {
	embs := ix.enc.EmbedAllParallel(qs, ix.opts.Workers)
	queries := make([]engine.Query, len(embs))
	for i, e := range embs {
		queries[i] = engine.Query{Emb: e, Code: hamming.FromSigns(e)}
	}
	batches := ix.eng.SearchBatch(queries, k)
	out := make([][]Result, len(batches))
	for i, rs := range batches {
		out[i] = toResults(rs)
	}
	return out
}

// SearchCtx is Search honoring cancellation and deadlines: the shard
// fan-out stops as soon as ctx is done and whatever shards answered in
// time are merged into a (possibly partial) answer, tagged by the
// returned Status. A panicking shard degrades the answer instead of
// crashing the process.
func (ix *Index) SearchCtx(ctx context.Context, q Trajectory, k int) ([]Result, Status) {
	return ix.SearchByVecCtx(ctx, ix.enc.Embed(q), k)
}

// SearchByVecCtx is SearchCtx with a precomputed query embedding.
func (ix *Index) SearchByVecCtx(ctx context.Context, qe []float64, k int) ([]Result, Status) {
	rs, st := ix.eng.SearchCtx(ctx, engine.Query{Emb: qe, Code: hamming.FromSigns(qe)}, k)
	return toResults(rs), st
}

// SearchBatchCtx is SearchBatch honoring cancellation and deadlines.
// Results and statuses are in query order; queries never started because
// the context expired first carry an incomplete Status with the context
// error. (Query embedding happens before the deadline applies to shard
// work; embed separately and use the engine directly for finer control.)
func (ix *Index) SearchBatchCtx(ctx context.Context, qs []Trajectory, k int) ([][]Result, []Status) {
	embs := ix.enc.EmbedAllParallel(qs, ix.opts.Workers)
	queries := make([]engine.Query, len(embs))
	for i, e := range embs {
		queries[i] = engine.Query{Emb: e, Code: hamming.FromSigns(e)}
	}
	batches, sts := ix.eng.SearchBatchCtx(ctx, queries, k)
	out := make([][]Result, len(batches))
	for i, rs := range batches {
		out[i] = toResults(rs)
	}
	return out, sts
}

// WithinCtx is Within honoring cancellation and deadlines; incomplete
// answers (missed shards) are tagged by the Status.
func (ix *Index) WithinCtx(ctx context.Context, q Trajectory, radius int) ([]int, Status) {
	//lint:ignore errcheck the built-in backend registration makes the config error impossible here
	ids, st, _ := ix.eng.WithinCtx(ctx, ix.enc.Code(q), radius)
	return ids, st
}

// SearchEuclidean returns the k most similar trajectories by embedding
// distance (Euclidean-BF): exact over the learned space, highest accuracy,
// linear scan cost.
func (ix *Index) SearchEuclidean(q Trajectory, k int) []Result {
	return ix.SearchEuclideanByVec(ix.enc.Embed(q), k)
}

// SearchEuclideanByVec is SearchEuclidean with a precomputed query
// embedding (from Encoder.Embed).
func (ix *Index) SearchEuclideanByVec(qe []float64, k int) []Result {
	//lint:ignore errcheck the built-in backend name is always registered; the config error is impossible
	rs, _ := ix.eng.SearchWith(BackendEuclideanBF, engine.Query{Emb: qe}, k)
	return toResults(rs)
}

// SearchHamming returns the k most similar trajectories by Hamming distance
// over the binary codes (Hamming-BF): a popcount scan, ~2× faster than the
// Euclidean scan.
func (ix *Index) SearchHamming(q Trajectory, k int) []Result {
	return ix.SearchHammingByCode(ix.enc.Code(q), k)
}

// SearchHammingByCode is SearchHamming with a precomputed query code (from
// Encoder.Code or SignCode).
func (ix *Index) SearchHammingByCode(qc Code, k int) []Result {
	//lint:ignore errcheck the built-in backend name is always registered; the config error is impossible
	rs, _ := ix.eng.SearchWith(BackendHammingBF, engine.Query{Code: qc}, k)
	return toResults(rs)
}

// SearchHybrid returns the k most similar trajectories with the paper's
// Hamming-Hybrid strategy: radius-2 table lookup when the neighborhood
// holds at least k items, brute-force scan otherwise. Fastest on large
// databases.
func (ix *Index) SearchHybrid(q Trajectory, k int) []Result {
	return ix.SearchHybridByCode(ix.enc.Code(q), k)
}

// SearchHybridByCode is SearchHybrid with a precomputed query code.
func (ix *Index) SearchHybridByCode(qc Code, k int) []Result {
	//lint:ignore errcheck the built-in backend name is always registered; the config error is impossible
	rs, _ := ix.eng.SearchWith(BackendHammingHybrid, engine.Query{Code: qc}, k)
	return toResults(rs)
}

// HybridFastPaths reports how many hybrid searches (across all shards)
// were answered via table lookup rather than the brute-force fallback.
func (ix *Index) HybridFastPaths() int64 { return ix.eng.FastPathCount() }

// Stats returns a point-in-time snapshot of the index's observability
// registry (Options.Metrics): search counters, degraded-result and
// panic-recovery counts, and the latency/candidate histograms. With no
// registry configured the snapshot is empty (zero-valued maps), so
// callers can always range over it without nil checks.
func (ix *Index) Stats() MetricsSnapshot {
	if ix.opts.Metrics == nil {
		return MetricsSnapshot{
			Counters:   map[string]int64{},
			Gauges:     map[string]float64{},
			Histograms: map[string]obs.HistogramSnapshot{},
		}
	}
	return ix.opts.Metrics.Snapshot()
}

// Within returns the ids of indexed trajectories whose hash codes lie
// within the given Hamming radius (0–2) of the query's code — the bucket
// neighborhood used for gathering-pattern style grouping (see
// examples/clustering). Ids are sorted ascending.
func (ix *Index) Within(q Trajectory, radius int) []int {
	//lint:ignore errcheck the built-in backend registration makes the config error impossible here
	ids, _ := ix.eng.Within(ix.enc.Code(q), radius)
	return ids
}

// Code returns the query's Hamming code under the index's encoder.
func (ix *Index) Code(q Trajectory) Code { return ix.enc.Code(q) }

// ApproxDistance returns the index's learned approximation of the
// trajectory distance between the query and an indexed trajectory. It
// embeds the query on every call; inside loops over many ids, embed once
// and use ApproxDistanceByVec.
func (ix *Index) ApproxDistance(q Trajectory, id int) float64 {
	return ix.ApproxDistanceByVec(ix.enc.Embed(q), id)
}

// ApproxDistanceByVec is ApproxDistance with a precomputed query
// embedding (from Encoder.Embed), amortizing the encoder forward pass over
// repeated distance evaluations. An out-of-range or deleted id has no
// distance: the result is NaN.
func (ix *Index) ApproxDistanceByVec(qe []float64, id int) float64 {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	if !ix.eng.Live(id) {
		return math.NaN()
	}
	emb := ix.embs[id]
	var sum float64
	for j := range qe {
		d := qe[j] - emb[j]
		sum += d * d
	}
	return math.Sqrt(sum)
}

func toResults(rs []engine.Result) []Result {
	out := make([]Result, len(rs))
	for i, r := range rs {
		out[i] = Result{ID: r.ID, Score: r.Score}
	}
	return out
}
