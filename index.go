package traj2hash

import (
	"fmt"
	"math"

	"traj2hash/internal/hamming"
	"traj2hash/internal/topk"
)

// Result is one search hit: the database id and the score under the
// strategy that produced it (squared Euclidean distance for
// SearchEuclidean; Hamming distance for the Hamming strategies — smaller
// is more similar in both cases).
type Result struct {
	ID    int
	Score float64
}

// Index is a searchable trajectory database: it stores each trajectory's
// Euclidean-space embedding and Hamming-space code and answers top-k
// similar-trajectory queries with any of the paper's three strategies.
// Trajectories can be added incrementally.
type Index struct {
	model *Model
	trajs []Trajectory
	embs  [][]float64
	table *hamming.Table
}

// NewIndex embeds and indexes the given trajectories with a trained model.
// At least one trajectory is required (the Hamming table needs a code
// length); use Add for subsequent insertions.
func NewIndex(m *Model, ts []Trajectory) (*Index, error) {
	if m == nil {
		return nil, fmt.Errorf("traj2hash: nil model")
	}
	if len(ts) == 0 {
		return nil, fmt.Errorf("traj2hash: empty initial database")
	}
	ix := &Index{model: m}
	embs := make([][]float64, len(ts))
	codes := make([]hamming.Code, len(ts))
	for i, t := range ts {
		embs[i] = m.Embed(t)
		codes[i] = hamming.FromSigns(embs[i])
	}
	table, err := hamming.NewTable(codes)
	if err != nil {
		return nil, err
	}
	ix.trajs = append(ix.trajs, ts...)
	ix.embs = embs
	ix.table = table
	return ix, nil
}

// Add embeds and indexes one more trajectory, returning its id.
func (ix *Index) Add(t Trajectory) (int, error) {
	emb := ix.model.Embed(t)
	id, err := ix.table.Add(hamming.FromSigns(emb))
	if err != nil {
		return 0, err
	}
	ix.trajs = append(ix.trajs, t)
	ix.embs = append(ix.embs, emb)
	return id, nil
}

// Len returns the number of indexed trajectories.
func (ix *Index) Len() int { return len(ix.trajs) }

// Trajectory returns the indexed trajectory with the given id.
func (ix *Index) Trajectory(id int) Trajectory { return ix.trajs[id] }

// Embedding returns the stored Euclidean-space embedding of id.
func (ix *Index) Embedding(id int) []float64 { return ix.embs[id] }

// SearchEuclidean returns the k most similar trajectories by embedding
// distance (Euclidean-BF): exact over the learned space, highest accuracy,
// linear scan cost. The query is embedded on the fly; to amortize encoding
// over repeated searches, embed once with the Model and use
// SearchEuclideanByVec.
func (ix *Index) SearchEuclidean(q Trajectory, k int) []Result {
	return ix.SearchEuclideanByVec(ix.model.Embed(q), k)
}

// SearchEuclideanByVec is SearchEuclidean with a precomputed query
// embedding (from Model.Embed).
func (ix *Index) SearchEuclideanByVec(qe []float64, k int) []Result {
	items := topk.Select(len(ix.embs), k, func(i int) float64 {
		var sum float64
		for j := range qe {
			d := qe[j] - ix.embs[i][j]
			sum += d * d
		}
		return sum
	})
	return toResults(items)
}

// SearchHamming returns the k most similar trajectories by Hamming distance
// over the binary codes (Hamming-BF): a popcount scan, ~2× faster than the
// Euclidean scan.
func (ix *Index) SearchHamming(q Trajectory, k int) []Result {
	return ix.SearchHammingByCode(ix.model.Code(q), k)
}

// SearchHammingByCode is SearchHamming with a precomputed query code (from
// Model.Code).
func (ix *Index) SearchHammingByCode(qc Code, k int) []Result {
	return neighborsToResults(ix.table.BruteForce(qc, k))
}

// SearchHybrid returns the k most similar trajectories with the paper's
// Hamming-Hybrid strategy: radius-2 table lookup when the neighborhood
// holds at least k items, brute-force scan otherwise. Fastest on large
// databases.
func (ix *Index) SearchHybrid(q Trajectory, k int) []Result {
	return ix.SearchHybridByCode(ix.model.Code(q), k)
}

// SearchHybridByCode is SearchHybrid with a precomputed query code.
func (ix *Index) SearchHybridByCode(qc Code, k int) []Result {
	ns, _ := ix.table.Hybrid(qc, k)
	return neighborsToResults(ns)
}

// Within returns the ids of indexed trajectories whose hash codes lie
// within the given Hamming radius (0–2) of the query's code — the bucket
// neighborhood used for gathering-pattern style grouping (see
// examples/clustering).
func (ix *Index) Within(q Trajectory, radius int) []int {
	return ix.table.LookupRadius(ix.model.Code(q), radius)
}

// Code returns the query's Hamming code under the index's model.
func (ix *Index) Code(q Trajectory) Code { return ix.model.Code(q) }

// ApproxDistance returns the index's learned approximation of the
// trajectory distance between the query and an indexed trajectory.
func (ix *Index) ApproxDistance(q Trajectory, id int) float64 {
	qe := ix.model.Embed(q)
	var sum float64
	for j := range qe {
		d := qe[j] - ix.embs[id][j]
		sum += d * d
	}
	return math.Sqrt(sum)
}

func toResults(items []topk.Item) []Result {
	out := make([]Result, len(items))
	for i, it := range items {
		out[i] = Result{ID: it.ID, Score: it.Dist}
	}
	return out
}

func neighborsToResults(ns []hamming.Neighbor) []Result {
	out := make([]Result, len(ns))
	for i, n := range ns {
		out[i] = Result{ID: n.ID, Score: float64(n.Distance)}
	}
	return out
}
