package traj2hash

import (
	"bytes"
	"math"
	"sync"
	"testing"
)

// facadeModel trains one tiny model shared by the API tests.
func facadeFixture(t *testing.T) (*Model, *Dataset) {
	t.Helper()
	ds := BuildDataset(Porto(), SplitSpec{
		Seed: 20, Validation: 12, Corpus: 60, Queries: 4, Database: 50,
	}, 5)
	cfg := DefaultConfig(16)
	cfg.Heads = 2
	cfg.Blocks = 1
	cfg.MaxLen = 12
	cfg.M = 4
	cfg.Epochs = 3
	cfg.BatchSize = 8
	cfg.GridCellSize = 200
	cfg.GridPreEpochs = 1
	m, err := New(cfg, ds.All())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Train(TrainData{
		Seeds: ds.Seeds, Validation: ds.Validation, Corpus: ds.Corpus, F: Frechet,
	}); err != nil {
		t.Fatal(err)
	}
	return m, ds
}

func TestPublicAPIDistanceFunctions(t *testing.T) {
	a := Trajectory{{X: 0, Y: 0}, {X: 1, Y: 0}}
	b := Trajectory{{X: 0, Y: 1}, {X: 1, Y: 1}}
	for _, f := range []DistanceFunc{DTW, Frechet, Hausdorff, ERP, EDR} {
		d := Distance(f, a, b)
		if math.IsNaN(d) || d < 0 {
			t.Errorf("%v = %v", f, d)
		}
	}
	if got := Distance(Frechet, a, b); got != 1 {
		t.Errorf("Frechet = %v", got)
	}
	m := DistanceMatrix(DTW, []Trajectory{a, b})
	if m[0][1] != m[1][0] || m[0][0] != 0 {
		t.Error("matrix not symmetric/zero-diagonal")
	}
}

func TestPublicAPIEndToEnd(t *testing.T) {
	m, ds := facadeFixture(t)
	// Model save/load through the façade.
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	m2, err := LoadModel(&buf)
	if err != nil {
		t.Fatal(err)
	}
	e1 := m.Embed(ds.Queries[0])
	e2 := m2.Embed(ds.Queries[0])
	for i := range e1 {
		if e1[i] != e2[i] {
			t.Fatal("façade round trip changed embeddings")
		}
	}
	// Evaluation through the façade.
	truth := GroundTruth(Frechet, ds.Queries, ds.Database, 10)
	if len(truth) != len(ds.Queries) {
		t.Fatal("ground truth shape")
	}
	if got := Evaluate(truth, truth); got.HR10 != 1 {
		t.Errorf("self HR@10 = %v", got.HR10)
	}
}

func TestProjectLonLat(t *testing.T) {
	p := ProjectLonLat(-8.61, 41.15, 41.15) // Porto
	q := ProjectLonLat(-8.60, 41.15, 41.15)
	d := p.Dist(q)
	// 0.01 degrees of longitude at 41N is ~838 m.
	if d < 700 || d > 950 {
		t.Errorf("0.01 deg lon = %v m", d)
	}
}

func TestIndexLifecycle(t *testing.T) {
	m, ds := facadeFixture(t)
	ix, err := NewIndex(m, ds.Database)
	if err != nil {
		t.Fatal(err)
	}
	if ix.Len() != len(ds.Database) {
		t.Fatalf("Len = %d", ix.Len())
	}
	q := ds.Queries[0]
	eu := ix.SearchEuclidean(q, 5)
	ham := ix.SearchHamming(q, 5)
	hyb := ix.SearchHybrid(q, 5)
	for _, res := range [][]Result{eu, ham, hyb} {
		if len(res) != 5 {
			t.Fatalf("result len = %d", len(res))
		}
		for i := 1; i < len(res); i++ {
			if res[i].Score < res[i-1].Score {
				t.Error("results not sorted by score")
			}
		}
	}
	// Hamming score is a true Hamming distance.
	qc := m.Code(q)
	for _, r := range ham {
		rt, ok := ix.Trajectory(r.ID)
		if !ok {
			t.Fatalf("result id %d not addressable", r.ID)
		}
		if int(r.Score) != HammingDistance(qc, m.Code(rt)) {
			t.Error("Hamming score mismatch")
		}
	}
	// ApproxDistance consistent with Euclidean search score.
	if d := ix.ApproxDistance(q, eu[0].ID); math.Abs(d*d-eu[0].Score) > 1e-6*(1+eu[0].Score) {
		t.Errorf("ApproxDistance² %v != score %v", d*d, eu[0].Score)
	}
	if emb, ok := ix.Embedding(0); !ok || len(emb) == 0 {
		t.Error("Embedding accessor empty")
	}
}

func TestIndexStats(t *testing.T) {
	m, ds := facadeFixture(t)
	reg := NewMetricsRegistry()
	ix, err := NewIndexWith(m, ds.Database, Options{Shards: 2, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range ds.Queries {
		if got := ix.Search(q, 5); len(got) != 5 {
			t.Fatalf("search returned %d results", len(got))
		}
	}
	s := ix.Stats()
	if got := s.Counters["engine.search.total"]; got != int64(len(ds.Queries)) {
		t.Errorf("engine.search.total = %d, want %d", got, len(ds.Queries))
	}
	if got := s.Counters["search.degraded"]; got != 0 {
		t.Errorf("search.degraded = %d, want 0", got)
	}
	if h := s.Histograms["engine.merge.seconds"]; h.Count != int64(len(ds.Queries)) {
		t.Errorf("engine.merge.seconds count = %d, want %d", h.Count, len(ds.Queries))
	}

	// An uninstrumented index still answers Stats, with empty maps.
	ix2, err := NewIndexWith(m, ds.Database, Options{})
	if err != nil {
		t.Fatal(err)
	}
	s2 := ix2.Stats()
	if s2.Counters == nil || s2.Gauges == nil || s2.Histograms == nil {
		t.Error("uninstrumented Stats returned nil maps")
	}
	if len(s2.Counters) != 0 {
		t.Errorf("uninstrumented Stats has counters: %v", s2.Counters)
	}
}

func TestIndexIncrementalAdd(t *testing.T) {
	m, ds := facadeFixture(t)
	ix, err := NewIndex(m, ds.Database[:10])
	if err != nil {
		t.Fatal(err)
	}
	// Insert the query itself: it must become the top hit everywhere.
	q := ds.Queries[1]
	id, err := ix.Add(q)
	if err != nil {
		t.Fatal(err)
	}
	if id != 10 || ix.Len() != 11 {
		t.Fatalf("id=%d len=%d", id, ix.Len())
	}
	if got := ix.SearchEuclidean(q, 1); got[0].ID != id || got[0].Score > 1e-9 {
		t.Errorf("Euclidean self = %+v", got[0])
	}
	if got := ix.SearchHamming(q, 1); got[0].ID != id || got[0].Score != 0 {
		t.Errorf("Hamming self = %+v", got[0])
	}
	if got := ix.SearchHybrid(q, 1); got[0].ID != id {
		t.Errorf("Hybrid self = %+v", got[0])
	}
}

func TestIndexWithinAndCode(t *testing.T) {
	m, ds := facadeFixture(t)
	ix, err := NewIndex(m, ds.Database)
	if err != nil {
		t.Fatal(err)
	}
	// An indexed trajectory is within radius 0 of itself.
	q := ds.Database[3]
	found := false
	for _, id := range ix.Within(q, 0) {
		if id == 3 {
			found = true
		}
	}
	if !found {
		t.Error("Within(self, 0) missing self")
	}
	// Radii are monotone.
	prev := 0
	for r := 0; r <= 2; r++ {
		n := len(ix.Within(q, r))
		if n < prev {
			t.Errorf("Within not monotone: %d then %d", prev, n)
		}
		prev = n
	}
	if ix.Code(q).Bits != m.Cfg.HashBits {
		t.Error("Code bits mismatch")
	}
}

func TestEmbedAllParallelMatches(t *testing.T) {
	m, ds := facadeFixture(t)
	seq := m.EmbedAll(ds.Database[:8])
	par := m.EmbedAllParallel(ds.Database[:8], 4)
	for i := range seq {
		for j := range seq[i] {
			if seq[i][j] != par[i][j] {
				t.Fatalf("parallel embedding differs at %d/%d", i, j)
			}
		}
	}
}

func TestFacadeFilesAndCities(t *testing.T) {
	if ChengDu().Name != "ChengDu" || Porto().Name != "Porto" {
		t.Error("city constructors wrong")
	}
	m, ds := facadeFixture(t)
	dir := t.TempDir()
	if err := m.SaveFile(dir + "/m.gob"); err != nil {
		t.Fatal(err)
	}
	m2, err := LoadModelFile(dir + "/m.gob")
	if err != nil {
		t.Fatal(err)
	}
	if len(m2.Embed(ds.Queries[0])) != len(m.Embed(ds.Queries[0])) {
		t.Error("file round trip dims differ")
	}
	if err := ds.Save(dir + "/ds.gob"); err != nil {
		t.Fatal(err)
	}
	ds2, err := LoadDataset(dir + "/ds.gob")
	if err != nil {
		t.Fatal(err)
	}
	if len(ds2.Database) != len(ds.Database) {
		t.Error("dataset round trip differs")
	}
}

// untrainedFixture builds a model without training — forward passes work
// from random init, which is all the engine-facade tests need and keeps
// them fast.
func untrainedFixture(t *testing.T) (*Model, *Dataset) {
	t.Helper()
	ds := BuildDataset(Porto(), SplitSpec{
		Seed: 10, Validation: 6, Corpus: 30, Queries: 6, Database: 80,
	}, 9)
	cfg := DefaultConfig(16)
	cfg.Heads = 2
	cfg.Blocks = 1
	cfg.MaxLen = 12
	cfg.M = 4
	cfg.GridCellSize = 200
	cfg.GridPreEpochs = 1
	m, err := New(cfg, ds.All())
	if err != nil {
		t.Fatal(err)
	}
	return m, ds
}

func TestIndexBackendSelection(t *testing.T) {
	m, ds := untrainedFixture(t)
	q := ds.Queries[0]
	// Reference: the default facade.
	ref, err := NewIndex(m, ds.Database)
	if err != nil {
		t.Fatal(err)
	}
	refEu := ref.SearchEuclidean(q, 7)
	refHam := ref.SearchHamming(q, 7)
	for _, backend := range Backends() {
		ix, err := NewIndexWith(m, ds.Database, Options{Backend: backend, Shards: 3, Workers: 2})
		if err != nil {
			t.Fatalf("%s: %v", backend, err)
		}
		if ix.Backend() != backend {
			t.Errorf("Backend() = %q, want %q", ix.Backend(), backend)
		}
		got := ix.Search(q, 7)
		if len(got) != 7 {
			t.Fatalf("%s: len = %d", backend, len(got))
		}
		// Each backend must agree with its strategy family on ids.
		want := refHam
		if backend == BackendEuclideanBF || backend == BackendVPTree {
			want = refEu
		}
		for i := range want {
			if got[i].ID != want[i].ID {
				t.Errorf("%s rank %d: id %d, want %d", backend, i, got[i].ID, want[i].ID)
			}
		}
		// The strategy-specific methods work regardless of configuration.
		if rs := ix.SearchEuclidean(q, 3); len(rs) != 3 || rs[0].ID != refEu[0].ID {
			t.Errorf("%s: SearchEuclidean = %+v", backend, rs)
		}
		if rs := ix.SearchHybrid(q, 3); len(rs) != 3 || rs[0].ID != refHam[0].ID {
			t.Errorf("%s: SearchHybrid = %+v", backend, rs)
		}
	}
	if _, err := NewIndexWith(m, ds.Database, Options{Backend: "bogus"}); err == nil {
		t.Error("unknown backend accepted")
	}
}

func TestIndexBatchAPIs(t *testing.T) {
	m, ds := untrainedFixture(t)
	ix, err := NewIndexWith(m, nil, Options{Shards: 2, Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	if ix.Len() != 0 {
		t.Fatalf("empty index Len = %d", ix.Len())
	}
	ids, err := ix.AddBatch(ds.Database)
	if err != nil {
		t.Fatal(err)
	}
	for i, id := range ids {
		if id != i {
			t.Fatalf("AddBatch ids = %v", ids[:5])
		}
	}
	if ix.Len() != len(ds.Database) {
		t.Fatalf("Len = %d", ix.Len())
	}
	// SearchBatch equals per-query Search, in query order.
	batch := ix.SearchBatch(ds.Queries, 5)
	if len(batch) != len(ds.Queries) {
		t.Fatalf("batch len = %d", len(batch))
	}
	for qi, q := range ds.Queries {
		single := ix.Search(q, 5)
		for i := range single {
			if batch[qi][i] != single[i] {
				t.Fatalf("query %d rank %d: batch %+v != single %+v", qi, i, batch[qi][i], single[i])
			}
		}
	}
	// SignCode matches Model.Code, so one forward pass serves both spaces.
	qe := m.Embed(ds.Queries[0])
	if !HammingDistanceIsZero(SignCode(qe), m.Code(ds.Queries[0])) {
		t.Error("SignCode(Embed) != Code")
	}
	// ApproxDistanceByVec agrees with ApproxDistance without re-embedding.
	if d1, d2 := ix.ApproxDistance(ds.Queries[0], 3), ix.ApproxDistanceByVec(qe, 3); d1 != d2 {
		t.Errorf("ApproxDistance %v != ByVec %v", d1, d2)
	}
}

// HammingDistanceIsZero is a test helper for code equality.
func HammingDistanceIsZero(a, b Code) bool { return HammingDistance(a, b) == 0 }

// TestIndexConcurrentAddSearch exercises the public facade under
// concurrent Add and Search on a sharded engine (run with -race).
func TestIndexConcurrentAddSearch(t *testing.T) {
	m, ds := untrainedFixture(t)
	ix, err := NewIndexWith(m, ds.Database[:20], Options{Shards: 3, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	rest := ds.Database[20:]
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for _, tr := range rest {
			if _, err := ix.Add(tr); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 30; i++ {
			q := ds.Queries[i%len(ds.Queries)]
			if res := ix.Search(q, 5); len(res) != 5 {
				t.Errorf("search returned %d results", len(res))
				return
			}
			ix.SearchEuclidean(q, 3)
			ix.Within(q, 1)
		}
	}()
	wg.Wait()
	if ix.Len() != len(ds.Database) {
		t.Fatalf("Len = %d, want %d", ix.Len(), len(ds.Database))
	}
	// Every id is addressable after the dust settles.
	for id := 0; id < ix.Len(); id++ {
		rt, tok := ix.Trajectory(id)
		emb, eok := ix.Embedding(id)
		if !tok || !eok || len(rt) == 0 || len(emb) == 0 {
			t.Fatalf("id %d unaddressable", id)
		}
	}
}

func TestIndexErrors(t *testing.T) {
	m, ds := facadeFixture(t)
	if _, err := NewIndex(nil, ds.Database); err == nil {
		t.Error("nil model accepted")
	}
	if _, err := NewIndex(m, nil); err == nil {
		t.Error("empty database accepted")
	}
}
