package traj2hash

import (
	"bytes"
	"math"
	"testing"
)

// facadeModel trains one tiny model shared by the API tests.
func facadeFixture(t *testing.T) (*Model, *Dataset) {
	t.Helper()
	ds := BuildDataset(Porto(), SplitSpec{
		Seed: 20, Validation: 12, Corpus: 60, Queries: 4, Database: 50,
	}, 5)
	cfg := DefaultConfig(16)
	cfg.Heads = 2
	cfg.Blocks = 1
	cfg.MaxLen = 12
	cfg.M = 4
	cfg.Epochs = 3
	cfg.BatchSize = 8
	cfg.GridCellSize = 200
	cfg.GridPreEpochs = 1
	m, err := New(cfg, ds.All())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Train(TrainData{
		Seeds: ds.Seeds, Validation: ds.Validation, Corpus: ds.Corpus, F: Frechet,
	}); err != nil {
		t.Fatal(err)
	}
	return m, ds
}

func TestPublicAPIDistanceFunctions(t *testing.T) {
	a := Trajectory{{X: 0, Y: 0}, {X: 1, Y: 0}}
	b := Trajectory{{X: 0, Y: 1}, {X: 1, Y: 1}}
	for _, f := range []DistanceFunc{DTW, Frechet, Hausdorff, ERP, EDR} {
		d := Distance(f, a, b)
		if math.IsNaN(d) || d < 0 {
			t.Errorf("%v = %v", f, d)
		}
	}
	if got := Distance(Frechet, a, b); got != 1 {
		t.Errorf("Frechet = %v", got)
	}
	m := DistanceMatrix(DTW, []Trajectory{a, b})
	if m[0][1] != m[1][0] || m[0][0] != 0 {
		t.Error("matrix not symmetric/zero-diagonal")
	}
}

func TestPublicAPIEndToEnd(t *testing.T) {
	m, ds := facadeFixture(t)
	// Model save/load through the façade.
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	m2, err := LoadModel(&buf)
	if err != nil {
		t.Fatal(err)
	}
	e1 := m.Embed(ds.Queries[0])
	e2 := m2.Embed(ds.Queries[0])
	for i := range e1 {
		if e1[i] != e2[i] {
			t.Fatal("façade round trip changed embeddings")
		}
	}
	// Evaluation through the façade.
	truth := GroundTruth(Frechet, ds.Queries, ds.Database, 10)
	if len(truth) != len(ds.Queries) {
		t.Fatal("ground truth shape")
	}
	if got := Evaluate(truth, truth); got.HR10 != 1 {
		t.Errorf("self HR@10 = %v", got.HR10)
	}
}

func TestProjectLonLat(t *testing.T) {
	p := ProjectLonLat(-8.61, 41.15, 41.15) // Porto
	q := ProjectLonLat(-8.60, 41.15, 41.15)
	d := p.Dist(q)
	// 0.01 degrees of longitude at 41N is ~838 m.
	if d < 700 || d > 950 {
		t.Errorf("0.01 deg lon = %v m", d)
	}
}

func TestIndexLifecycle(t *testing.T) {
	m, ds := facadeFixture(t)
	ix, err := NewIndex(m, ds.Database)
	if err != nil {
		t.Fatal(err)
	}
	if ix.Len() != len(ds.Database) {
		t.Fatalf("Len = %d", ix.Len())
	}
	q := ds.Queries[0]
	eu := ix.SearchEuclidean(q, 5)
	ham := ix.SearchHamming(q, 5)
	hyb := ix.SearchHybrid(q, 5)
	for _, res := range [][]Result{eu, ham, hyb} {
		if len(res) != 5 {
			t.Fatalf("result len = %d", len(res))
		}
		for i := 1; i < len(res); i++ {
			if res[i].Score < res[i-1].Score {
				t.Error("results not sorted by score")
			}
		}
	}
	// Hamming score is a true Hamming distance.
	qc := m.Code(q)
	for _, r := range ham {
		if int(r.Score) != HammingDistance(qc, m.Code(ix.Trajectory(r.ID))) {
			t.Error("Hamming score mismatch")
		}
	}
	// ApproxDistance consistent with Euclidean search score.
	if d := ix.ApproxDistance(q, eu[0].ID); math.Abs(d*d-eu[0].Score) > 1e-6*(1+eu[0].Score) {
		t.Errorf("ApproxDistance² %v != score %v", d*d, eu[0].Score)
	}
	if len(ix.Embedding(0)) == 0 {
		t.Error("Embedding accessor empty")
	}
}

func TestIndexIncrementalAdd(t *testing.T) {
	m, ds := facadeFixture(t)
	ix, err := NewIndex(m, ds.Database[:10])
	if err != nil {
		t.Fatal(err)
	}
	// Insert the query itself: it must become the top hit everywhere.
	q := ds.Queries[1]
	id, err := ix.Add(q)
	if err != nil {
		t.Fatal(err)
	}
	if id != 10 || ix.Len() != 11 {
		t.Fatalf("id=%d len=%d", id, ix.Len())
	}
	if got := ix.SearchEuclidean(q, 1); got[0].ID != id || got[0].Score > 1e-9 {
		t.Errorf("Euclidean self = %+v", got[0])
	}
	if got := ix.SearchHamming(q, 1); got[0].ID != id || got[0].Score != 0 {
		t.Errorf("Hamming self = %+v", got[0])
	}
	if got := ix.SearchHybrid(q, 1); got[0].ID != id {
		t.Errorf("Hybrid self = %+v", got[0])
	}
}

func TestIndexWithinAndCode(t *testing.T) {
	m, ds := facadeFixture(t)
	ix, err := NewIndex(m, ds.Database)
	if err != nil {
		t.Fatal(err)
	}
	// An indexed trajectory is within radius 0 of itself.
	q := ds.Database[3]
	found := false
	for _, id := range ix.Within(q, 0) {
		if id == 3 {
			found = true
		}
	}
	if !found {
		t.Error("Within(self, 0) missing self")
	}
	// Radii are monotone.
	prev := 0
	for r := 0; r <= 2; r++ {
		n := len(ix.Within(q, r))
		if n < prev {
			t.Errorf("Within not monotone: %d then %d", prev, n)
		}
		prev = n
	}
	if ix.Code(q).Bits != m.Cfg.HashBits {
		t.Error("Code bits mismatch")
	}
}

func TestEmbedAllParallelMatches(t *testing.T) {
	m, ds := facadeFixture(t)
	seq := m.EmbedAll(ds.Database[:8])
	par := m.EmbedAllParallel(ds.Database[:8], 4)
	for i := range seq {
		for j := range seq[i] {
			if seq[i][j] != par[i][j] {
				t.Fatalf("parallel embedding differs at %d/%d", i, j)
			}
		}
	}
}

func TestFacadeFilesAndCities(t *testing.T) {
	if ChengDu().Name != "ChengDu" || Porto().Name != "Porto" {
		t.Error("city constructors wrong")
	}
	m, ds := facadeFixture(t)
	dir := t.TempDir()
	if err := m.SaveFile(dir + "/m.gob"); err != nil {
		t.Fatal(err)
	}
	m2, err := LoadModelFile(dir + "/m.gob")
	if err != nil {
		t.Fatal(err)
	}
	if len(m2.Embed(ds.Queries[0])) != len(m.Embed(ds.Queries[0])) {
		t.Error("file round trip dims differ")
	}
	if err := ds.Save(dir + "/ds.gob"); err != nil {
		t.Fatal(err)
	}
	ds2, err := LoadDataset(dir + "/ds.gob")
	if err != nil {
		t.Fatal(err)
	}
	if len(ds2.Database) != len(ds.Database) {
		t.Error("dataset round trip differs")
	}
}

func TestIndexErrors(t *testing.T) {
	m, ds := facadeFixture(t)
	if _, err := NewIndex(nil, ds.Database); err == nil {
		t.Error("nil model accepted")
	}
	if _, err := NewIndex(m, nil); err == nil {
		t.Error("empty database accepted")
	}
}
