// Package traj2hash's root benchmark suite regenerates every table and
// figure of the paper at the Tiny scale (one iteration ≈ seconds), plus
// micro-benchmarks of the hot paths: exact distance functions, embedding,
// hashing, and the three search strategies.
//
// Run everything:
//
//	go test -bench=. -benchmem
//
// Regenerate one artifact (e.g. Table II):
//
//	go test -bench=BenchmarkTable2 -benchmem
//
// The tables print on the first iteration so a bench run doubles as a
// reproduction run; larger scales are available through cmd/traj2hash.
package traj2hash

import (
	"fmt"
	"io"
	"math/rand"
	"os"
	"runtime"
	"sync"
	"testing"

	"traj2hash/internal/core"
	"traj2hash/internal/data"
	"traj2hash/internal/dist"
	"traj2hash/internal/engine"
	"traj2hash/internal/experiments"
	"traj2hash/internal/geo"
	"traj2hash/internal/hamming"
	"traj2hash/internal/search"
)

// benchExperiment runs a registry experiment once per iteration, printing
// the resulting table on the first.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	exp, err := experiments.Lookup(id)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		tbl, err := exp.Run(experiments.Tiny, io.Discard)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			tbl.Fprint(os.Stdout)
		}
	}
}

func BenchmarkTable1_EuclideanAccuracy(b *testing.B) { benchExperiment(b, "table1") }
func BenchmarkTable2_HammingAccuracy(b *testing.B)   { benchExperiment(b, "table2") }
func BenchmarkTable3_Ablation(b *testing.B)          { benchExperiment(b, "table3") }
func BenchmarkFig4_ReadoutLayers(b *testing.B)       { benchExperiment(b, "fig4") }
func BenchmarkFig5_TimeVsDatabaseSize(b *testing.B)  { benchExperiment(b, "fig5") }
func BenchmarkFig6_TimeVsK(b *testing.B)             { benchExperiment(b, "fig6") }
func BenchmarkFig7_GridRepresentations(b *testing.B) { benchExperiment(b, "fig7") }
func BenchmarkFig8_AlphaSweep(b *testing.B)          { benchExperiment(b, "fig8") }
func BenchmarkFig9_GammaSweep(b *testing.B)          { benchExperiment(b, "fig9") }

// --- micro-benchmarks of the substrates ---

var (
	microOnce  sync.Once
	microTrajs []geo.Trajectory
	microModel *core.Model
)

func microSetup(b *testing.B) {
	b.Helper()
	microOnce.Do(func() {
		microTrajs = data.Porto().Generate(256, 1)
		cfg := core.DefaultConfig(16)
		cfg.Heads = 2
		cfg.Blocks = 1
		cfg.MaxLen = 16
		cfg.GridCellSize = 200
		cfg.GridPreEpochs = 1
		m, err := core.New(cfg, microTrajs)
		if err != nil {
			panic(err)
		}
		microModel = m
	})
}

func BenchmarkDistDTW(b *testing.B) {
	microSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dist.DTW(microTrajs[i%128], microTrajs[128+i%128])
	}
}

func BenchmarkDistFrechet(b *testing.B) {
	microSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dist.Frechet(microTrajs[i%128], microTrajs[128+i%128])
	}
}

func BenchmarkDistHausdorff(b *testing.B) {
	microSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dist.Hausdorff(microTrajs[i%128], microTrajs[128+i%128])
	}
}

func BenchmarkEmbed(b *testing.B) {
	microSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		microModel.Embed(microTrajs[i%256])
	}
}

func BenchmarkHashCode(b *testing.B) {
	microSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		microModel.Code(microTrajs[i%256])
	}
}

func benchSearchSetup(b *testing.B, n int) ([]hamming.Code, [][]float64, hamming.Code, []float64) {
	b.Helper()
	microSetup(b)
	trajs := data.Porto().Generate(n, 2)
	codes := make([]hamming.Code, n)
	embs := make([][]float64, n)
	for i, t := range trajs {
		embs[i] = microModel.Embed(t)
		codes[i] = hamming.FromSigns(embs[i])
	}
	q := microModel.Embed(microTrajs[0])
	return codes, embs, hamming.FromSigns(q), q
}

func BenchmarkSearchEuclideanBF10k(b *testing.B) {
	_, embs, _, q := benchSearchSetup(b, 10000)
	s, err := search.NewEuclideanBF(embs, [][]float64{q})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Search(0, 50)
	}
}

func BenchmarkSearchHammingBF10k(b *testing.B) {
	codes, _, qc, _ := benchSearchSetup(b, 10000)
	s, err := search.NewHammingBF(codes, []hamming.Code{qc})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Search(0, 50)
	}
}

func BenchmarkSearchHammingHybrid10k(b *testing.B) {
	codes, _, qc, _ := benchSearchSetup(b, 10000)
	s, err := search.NewHammingHybrid(codes, []hamming.Code{qc})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Search(0, 50)
	}
}

// BenchmarkSearchVPTree10k measures the exact Euclidean k-NN metric-tree
// extension (see internal/search/vptree.go) against the linear scans above.
func BenchmarkSearchVPTree10k(b *testing.B) {
	_, embs, _, q := benchSearchSetup(b, 10000)
	tree, err := search.NewVPTree(embs, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tree.Search(q, 50)
	}
}

// BenchmarkSearchHammingMIH10k measures the multi-index hashing extension
// (see internal/hamming/mih.go) on the same short-code workload as the
// three paper strategies above. Short dense codes favor the hybrid's whole-
// code radius expansion; MIH's regime is long codes — see
// BenchmarkSearchLongCodes64.
func BenchmarkSearchHammingMIH10k(b *testing.B) {
	codes, _, qc, _ := benchSearchSetup(b, 10000)
	s, err := search.NewHammingMIH(codes, []hamming.Code{qc}, 4)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Search(0, 50)
	}
}

// BenchmarkSearchLongCodes64 compares the paper's strategies against MIH on
// 64-bit codes — the footnote-5 regime where whole-code radius-2 expansion
// probes C(64,2)+65 ≈ 2.1K buckets of a mostly empty table and the hybrid
// degenerates to a brute-force scan, while MIH probes four 16-bit tables.
// Codes are clustered (noisy copies of shared patterns) so neighborhoods
// are non-trivial, as trained trajectory codes are.
func BenchmarkSearchLongCodes64(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	const n = 20000
	codes := make([]hamming.Code, n)
	for i := range codes {
		v := make([]float64, 64)
		base := int64(i % 200) // 200 shared patterns
		prng := rand.New(rand.NewSource(base))
		for j := range v {
			v[j] = prng.NormFloat64()
			if rng.Float64() < 0.05 { // 5% bit noise
				v[j] = -v[j]
			}
		}
		codes[i] = hamming.FromSigns(v)
	}
	q := codes[7]
	hybrid, err := search.NewHammingHybrid(codes, []hamming.Code{q})
	if err != nil {
		b.Fatal(err)
	}
	mih, err := search.NewHammingMIH(codes, []hamming.Code{q}, 4)
	if err != nil {
		b.Fatal(err)
	}
	bf, err := search.NewHammingBF(codes, []hamming.Code{q})
	if err != nil {
		b.Fatal(err)
	}
	b.Run("HammingBF", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			bf.Search(0, 50)
		}
	})
	b.Run("HammingHybrid", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			hybrid.Search(0, 50)
		}
	})
	b.Run("HammingMIH", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			mih.Search(0, 50)
		}
	})
}

// BenchmarkEngineSearchBatch measures batch-query throughput of the
// sharded query engine: the same 64-query batch answered sequentially
// (workers=1) versus fanned out across all cores (workers=GOMAXPROCS),
// over 1 and 4 shards. On a machine with ≥4 cores the parallel cases
// should approach a cores-fold speedup on the CPU-bound euclidean-bf
// scan; the Hamming backends are memory-light and scale similarly.
func BenchmarkEngineSearchBatch(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	const (
		n   = 20000
		dim = 32
		nq  = 64
		k   = 50
	)
	vecs := make([][]float64, n)
	for i := range vecs {
		v := make([]float64, dim)
		for j := range v {
			v[j] = rng.NormFloat64()
		}
		vecs[i] = v
	}
	queries := make([]engine.Query, nq)
	for i := range queries {
		v := make([]float64, dim)
		for j := range v {
			v[j] = rng.NormFloat64()
		}
		queries[i] = engine.Query{Emb: v, Code: hamming.FromSigns(v)}
	}
	maxWorkers := runtime.GOMAXPROCS(0)
	for _, backend := range []string{engine.EuclideanBFName, engine.HammingHybridName} {
		for _, cfg := range []struct{ shards, workers int }{
			{1, 1}, {1, maxWorkers}, {4, maxWorkers},
		} {
			e, err := engine.New(engine.Options{
				Backends: []string{backend},
				Shards:   cfg.shards,
				Workers:  cfg.workers,
			})
			if err != nil {
				b.Fatal(err)
			}
			if _, err := e.AddBatch(vecs, nil); err != nil {
				b.Fatal(err)
			}
			name := fmt.Sprintf("%s/shards=%d/workers=%d", backend, cfg.shards, cfg.workers)
			b.Run(name, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					e.SearchBatch(queries, k)
				}
			})
		}
	}
}

// BenchmarkEngineShardFanout measures single-query latency as shards
// grow: the per-query fan-out turns one long scan into Shards shorter
// scans executed in parallel.
func BenchmarkEngineShardFanout(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	const n, dim = 20000, 32
	vecs := make([][]float64, n)
	for i := range vecs {
		v := make([]float64, dim)
		for j := range v {
			v[j] = rng.NormFloat64()
		}
		vecs[i] = v
	}
	qv := make([]float64, dim)
	for j := range qv {
		qv[j] = rng.NormFloat64()
	}
	q := engine.Query{Emb: qv, Code: hamming.FromSigns(qv)}
	for _, shards := range []int{1, 2, 4, 8} {
		e, err := engine.New(engine.Options{
			Backends: []string{engine.EuclideanBFName},
			Shards:   shards,
		})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := e.AddBatch(vecs, nil); err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				e.Search(q, 50)
			}
		})
	}
}

func BenchmarkTripletGeneration(b *testing.B) {
	corpus := data.Porto().Generate(500, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		trips := core.GenerateTriplets(corpus, 500, 200, int64(i))
		if len(trips) == 0 {
			b.Fatal("no triplets")
		}
	}
}

func BenchmarkTrainEpochTiny(b *testing.B) {
	seeds := data.Porto().Generate(24, 4)
	cfg := core.DefaultConfig(16)
	cfg.Heads = 2
	cfg.Blocks = 1
	cfg.MaxLen = 12
	cfg.M = 4
	cfg.Epochs = 1
	cfg.BatchSize = 8
	cfg.GridCellSize = 200
	cfg.GridPreEpochs = 1
	cfg.UseTriplets = false
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i + 1)
		m, err := core.New(cfg, seeds)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := m.Train(core.TrainData{Seeds: seeds, F: dist.FrechetDist}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExactVsApprox reports the headline speed gap motivating the
// paper: exact DTW versus one embedding-distance computation.
func BenchmarkExactVsApprox(b *testing.B) {
	microSetup(b)
	a, c := microTrajs[0], microTrajs[1]
	ea := microModel.Embed(a)
	ec := microModel.Embed(c)
	b.Run("ExactDTW", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			dist.DTW(a, c)
		}
	})
	b.Run("EmbeddingDistance", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			var sum float64
			for j := range ea {
				d := ea[j] - ec[j]
				sum += d * d
			}
			_ = sum
		}
	})
}
