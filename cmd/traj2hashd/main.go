// Command traj2hashd is the long-running serving daemon: it loads a
// dataset, builds (or recovers) a trajectory index, and serves it over
// HTTP until SIGTERM/SIGINT, then drains gracefully — the listener
// stops accepting, in-flight requests finish, and the WAL is fsynced
// and closed. Endpoints:
//
//	POST /search   {"traj": [[x,y],...], "k": 10, "timeout_ms": 500}
//	POST /add      {"traj": [[x,y],...]}
//	POST /delete   {"id": 3}
//	POST /update   {"id": 3, "traj": [[x,y],...]}
//	GET  /stats    index shape, drain state, latency quantiles, metrics
//	GET  /healthz  200 serving | 503 draining
//
// Concurrent single searches are coalesced by a small wait-window
// batcher into one engine invocation, and admission control sheds with
// 503 beyond -max-inflight. Drive it with cmd/trajload.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"traj2hash"
	"traj2hash/internal/core"
	"traj2hash/internal/data"
	"traj2hash/internal/experiments"
	"traj2hash/internal/obs"
	"traj2hash/internal/serve"
)

func main() {
	// First signal starts the graceful drain; a second unregisters the
	// handler and kills the process the default way, so a wedged drain
	// can always be force-quit.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		stop()
	}()
	if err := run(ctx, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "traj2hashd:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("traj2hashd", flag.ExitOnError)
	addr := fs.String("addr", ":8080",
		"listen address (binds 127.0.0.1 unless a host is given)")
	addrFile := fs.String("addr-file", "",
		"write the bound address to this file once listening (for scripts using -addr :0)")
	in := fs.String("data", "dataset.gob", "dataset path; its database split seeds a fresh index")
	encoderKind := fs.String("encoder", "",
		"encoder kind: "+strings.Join(core.EncoderKinds(), " | ")+
			"; training-free kinds build from the dataset, trainable kinds load -model (default: whatever -model holds)")
	modelPath := fs.String("model", "model.gob", "trained encoder path (ignored by training-free encoders)")
	scale := fs.String("scale", "small", "config scale for training-free encoders built on the fly")
	strategy := fs.String("strategy", "hamming-hybrid",
		"search backend: "+strings.Join(traj2hash.Backends(), " | "))
	shards := fs.Int("shards", 1, "database shards (queries fan out across shards in parallel)")
	workers := fs.Int("workers", 0, "parallel workers for embedding and search (0 = GOMAXPROCS)")
	walDir := fs.String("wal-dir", "",
		"durability directory: mutations are write-ahead logged there and a prior run's state is recovered on startup (default off: in-memory)")
	snapshotEvery := fs.Int("snapshot-every", 0,
		"with -wal-dir, snapshot cadence in logged mutations (0 = default, negative = log-only)")
	syncEvery := fs.Int("sync-every", 0,
		"with -wal-dir, fsync cadence in appends; 1 = every append (0 = default)")
	timeout := fs.Duration("timeout", 2*time.Second,
		"default per-request deadline when the client sends no timeout_ms (0 = none)")
	batchWindow := fs.Duration("batch-window", 2*time.Millisecond,
		"how long an open batch waits for concurrent searches to coalesce (negative = no coalescing)")
	batchMax := fs.Int("batch-max", 64, "max coalesced batch size")
	maxInFlight := fs.Int("max-inflight", 256,
		"admitted-request bound; beyond it requests are shed with 503")
	drainTimeout := fs.Duration("drain-timeout", 30*time.Second,
		"how long drain waits for in-flight requests after SIGTERM")
	k := fs.Int("k", 10, "default result count when a search omits k")
	debug := fs.Bool("debug", true, "mount /metrics, /trace and pprof on the serving mux")
	if err := fs.Parse(args); err != nil {
		return err
	}

	ds, err := data.Load(*in)
	if err != nil {
		return err
	}
	enc, err := resolveEncoder(*encoderKind, *modelPath, *scale, ds)
	if err != nil {
		return err
	}
	reg := obs.Default()

	buildStart := time.Now()
	idx, err := traj2hash.NewIndexWith(enc, ds.Database, traj2hash.Options{
		Backend:       *strategy,
		Shards:        *shards,
		Workers:       *workers,
		Metrics:       reg,
		WALDir:        *walDir,
		SnapshotEvery: *snapshotEvery,
		WALSyncEvery:  *syncEvery,
	})
	if err != nil {
		return err
	}
	if rec := idx.Recovery(); rec.Recovered {
		torn := ""
		if rec.TornTail {
			torn = "; truncated a torn final record (crash mid-append)"
		}
		fmt.Printf("recovered %d trajectories from %s (%d from snapshot, %d replayed from the log%s)\n",
			idx.Len(), *walDir, rec.FromSnapshot, rec.Replayed, torn)
	}
	fmt.Printf("serving %d trajectories (%s encoder, %s backend, %d shard(s)) built in %v\n",
		idx.Len(), enc.Kind(), idx.Backend(), *shards, time.Since(buildStart).Round(time.Millisecond))

	srv, err := serve.New(serve.Config{
		Index:          idx,
		Metrics:        reg,
		DefaultTimeout: *timeout,
		DefaultK:       *k,
		BatchWindow:    *batchWindow,
		MaxBatch:       *batchMax,
		MaxInFlight:    *maxInFlight,
		DrainTimeout:   *drainTimeout,
		Debug:          *debug,
	})
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", serve.ListenAddr(*addr))
	if err != nil {
		return err
	}
	bound := ln.Addr().String()
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(bound), 0o644); err != nil {
			return fmt.Errorf("writing -addr-file: %w", err)
		}
	}
	fmt.Printf("listening on http://%s (SIGTERM drains: in-flight requests finish, the WAL is fsynced)\n", bound)
	// Run blocks until ctx cancels, then drains and closes the index.
	if err := srv.Run(ctx, ln); err != nil {
		return err
	}
	fmt.Println("drained cleanly: all in-flight requests completed, index closed")
	return nil
}

// resolveEncoder mirrors the search subcommand's encoder resolution:
// training-free kinds (geopth) build from the dataset on the fly,
// trainable kinds load -model and must match. Duplicated here rather
// than shared because main packages cannot import each other.
func resolveEncoder(kindFlag, modelPath, scale string, ds *data.Dataset) (core.Encoder, error) {
	if kindFlag == "" {
		return core.LoadEncoderFile(modelPath)
	}
	kind, err := core.ResolveEncoderKind(kindFlag)
	if err != nil {
		return nil, err
	}
	if kind == core.GeoPTHKind {
		sc, err := experiments.ParseScale(scale)
		if err != nil {
			return nil, err
		}
		cfg := experiments.ParamsFor(sc).CoreConfig()
		return core.NewEncoder(kind, cfg, ds.All())
	}
	enc, err := core.LoadEncoderFile(modelPath)
	if err != nil {
		return nil, err
	}
	if enc.Kind() != kind {
		return nil, fmt.Errorf("%s holds a %q encoder, but -encoder %s was requested", modelPath, enc.Kind(), kind)
	}
	return enc, nil
}
