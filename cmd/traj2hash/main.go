// Command traj2hash is the command-line interface of the library:
//
//	traj2hash gen        generate a synthetic trajectory dataset
//	traj2hash train      train a trainable encoder (attention, cnn) on a dataset
//	traj2hash search     top-k similar trajectory search with an encoder
//	traj2hash bench      benchmark embed/encode throughput per encoder kind
//	traj2hash experiment reproduce one of the paper's tables or figures
//	traj2hash all        reproduce every table and figure
//
// Run any subcommand with -h for its flags.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"traj2hash"
	"traj2hash/internal/core"
	"traj2hash/internal/data"
	"traj2hash/internal/dist"
	"traj2hash/internal/experiments"
	"traj2hash/internal/geo"
	"traj2hash/internal/obs"
	"traj2hash/internal/serve"
)

func main() {
	// Ctrl-C / SIGTERM cancel the command context so long-running
	// subcommands (train, search, experiment, all) wind down cleanly —
	// train flushes a checkpoint, search returns partial results. A second
	// signal unregisters the handler and kills the process the default way,
	// so a wedged run can always be force-quit.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		stop()
	}()
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "gen":
		err = cmdGen(os.Args[2:])
	case "import":
		err = cmdImport(os.Args[2:])
	case "train":
		err = cmdTrain(ctx, os.Args[2:])
	case "search":
		err = cmdSearch(ctx, os.Args[2:])
	case "bench":
		err = cmdBench(ctx, os.Args[2:])
	case "experiment":
		err = cmdExperiment(ctx, os.Args[2:])
	case "all":
		err = cmdAll(ctx, os.Args[2:])
	case "-h", "--help", "help":
		usage()
	default:
		usage()
		err = fmt.Errorf("unknown subcommand %q", os.Args[1])
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "traj2hash:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: traj2hash <command> [flags]

commands:
  gen         generate a synthetic trajectory dataset (porto | chengdu)
  import      build a dataset from a CSV of real trajectories
  train       train a trainable encoder (-encoder attention|cnn) on a dataset
  search      top-k similar trajectory search with an encoder
  bench       benchmark embed/encode throughput per encoder kind
  experiment  reproduce a paper table/figure: table1..3 fig4..9 extra-cdtw encoders
  all         reproduce every table and figure`)
}

func cityByName(name string) (*data.City, error) {
	switch name {
	case "porto":
		return data.Porto(), nil
	case "chengdu":
		return data.ChengDu(), nil
	default:
		return nil, fmt.Errorf("unknown city %q (porto|chengdu)", name)
	}
}

func cmdGen(args []string) error {
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	city := fs.String("city", "porto", "city model: porto or chengdu")
	scale := fs.String("scale", "small", "dataset scale: tiny|small|medium|paper")
	out := fs.String("out", "dataset.gob", "output path")
	seed := fs.Int64("seed", 1, "generation seed")
	if err := fs.Parse(args); err != nil {
		return err
	}

	c, err := cityByName(*city)
	if err != nil {
		return err
	}
	sc, err := experiments.ParseScale(*scale)
	if err != nil {
		return err
	}
	p := experiments.ParamsFor(sc)
	start := time.Now()
	ds := data.Build(c, p.Split, *seed)
	if err := ds.Save(*out); err != nil {
		return err
	}
	fmt.Printf("generated %s dataset: %d seeds, %d validation, %d corpus, %d queries, %d database (%v) -> %s\n",
		ds.Name, len(ds.Seeds), len(ds.Validation), len(ds.Corpus), len(ds.Queries), len(ds.Database),
		time.Since(start).Round(time.Millisecond), *out)
	return nil
}

// cmdImport builds a Dataset from a CSV of real trajectories
// (traj_id,x,y rows in planar meters, or traj_id,lon,lat with -lonlat).
// Trajectories are shuffled and split by the given ratios, then saved in
// the same gob format gen produces, so train/search work unchanged.
func cmdImport(args []string) error {
	fs := flag.NewFlagSet("import", flag.ExitOnError)
	in := fs.String("csv", "", "input CSV path (required)")
	out := fs.String("out", "dataset.gob", "output dataset path")
	name := fs.String("name", "imported", "dataset name")
	lonlat := fs.Bool("lonlat", false, "coordinates are lon,lat degrees (projected to meters)")
	refLat := fs.Float64("reflat", 0, "reference latitude for -lonlat (default: first point's)")
	seedFrac := fs.Float64("seeds", 0.05, "fraction used as exact-distance seeds")
	valFrac := fs.Float64("val", 0.05, "fraction used for validation")
	corpusFrac := fs.Float64("corpus", 0.30, "fraction used as triplet corpus")
	queryFrac := fs.Float64("queries", 0.05, "fraction used as test queries")
	seed := fs.Int64("seed", 1, "shuffle seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		return fmt.Errorf("import: -csv is required")
	}
	f, err := os.Open(*in)
	if err != nil {
		return err
	}
	defer f.Close()
	var ts []geo.Trajectory
	if *lonlat {
		ref := *refLat
		//lint:ignore floatcompare 0 is the flag's exact "not given" sentinel, never a computed value
		if ref == 0 {
			// No reference latitude given: read the raw degree values and
			// project with the first point's latitude as the reference.
			all, err := data.ReadCSV(f)
			if err != nil {
				return err
			}
			if len(all) == 0 || len(all[0]) == 0 {
				return fmt.Errorf("import: empty CSV")
			}
			ref = all[0][0].Y // the raw Y column holds latitude degrees
			for _, raw := range all {
				t := make(geo.Trajectory, len(raw))
				for i, p := range raw {
					t[i] = geo.ProjectEquirectangular(p.X, p.Y, ref)
				}
				ts = append(ts, t)
			}
		} else {
			ts, err = data.ReadCSVLonLat(f, ref)
			if err != nil {
				return err
			}
		}
	} else {
		ts, err = data.ReadCSV(f)
		if err != nil {
			return err
		}
	}
	ts = data.Filter(ts, data.MinPoints)
	if len(ts) < 20 {
		return fmt.Errorf("import: only %d trajectories with ≥%d points; need at least 20", len(ts), data.MinPoints)
	}
	ds, err := data.SplitByFractions(*name, ts, *seedFrac, *valFrac, *corpusFrac, *queryFrac, *seed)
	if err != nil {
		return err
	}
	if err := ds.Save(*out); err != nil {
		return err
	}
	fmt.Printf("imported %d trajectories: %d seeds, %d validation, %d corpus, %d queries, %d database -> %s\n",
		len(ts), len(ds.Seeds), len(ds.Validation), len(ds.Corpus), len(ds.Queries), len(ds.Database), *out)
	return nil
}

func cmdTrain(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("train", flag.ExitOnError)
	in := fs.String("data", "dataset.gob", "dataset path (from gen)")
	distName := fs.String("dist", "frechet", "distance function: dtw|frechet|hausdorff")
	scale := fs.String("scale", "small", "model scale: tiny|small|medium|paper")
	encoderKind := fs.String("encoder", core.AttentionKind,
		"encoder kind to train: "+strings.Join(core.EncoderKinds(), " | "))
	out := fs.String("out", "model.gob", "output model path")
	ckptEvery := fs.Int("checkpoint-every", 0,
		"write a resumable checkpoint every N epochs (0 = only on interrupt)")
	ckptPath := fs.String("checkpoint", "", "checkpoint path (default <out>.ckpt)")
	resume := fs.String("resume", "", "resume training from this checkpoint file")
	debugAddrFlag := fs.String("debug-addr", "",
		"serve /metrics, /trace and pprof on this address while training (e.g. :6060; binds 127.0.0.1 unless a host is given; default off)")
	stats := fs.Bool("stats", false, "print a metrics summary when training finishes")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *ckptPath == "" {
		*ckptPath = *out + ".ckpt"
	}
	// The CLI records into the process-global registry — the same one the
	// checkpoint-persistence counters land on, so /metrics and -stats see
	// the whole picture.
	reg := obs.Default()
	if *debugAddrFlag != "" {
		bound, err := serve.StartDebugServer(ctx, *debugAddrFlag, reg)
		if err != nil {
			return err
		}
		fmt.Printf("debug server on http://%s (metrics, trace, pprof)\n", bound)
	}

	ds, err := data.Load(*in)
	if err != nil {
		return err
	}
	f, err := dist.ParseFunc(*distName)
	if err != nil {
		return err
	}
	sc, err := experiments.ParseScale(*scale)
	if err != nil {
		return err
	}
	kind, err := core.ResolveEncoderKind(*encoderKind)
	if err != nil {
		return err
	}
	cfg := experiments.ParamsFor(sc).CoreConfig()
	enc, err := core.NewEncoder(kind, cfg, ds.All())
	if err != nil {
		return err
	}
	m, ok := enc.(core.Trainable)
	if !ok {
		return fmt.Errorf("train: encoder %q is training-free; it needs no train step — use it directly, e.g. 'traj2hash search -encoder %s'", kind, kind)
	}
	wroteCkpt := false
	td := core.TrainData{
		Seeds: ds.Seeds, Validation: ds.Validation, Corpus: ds.Corpus, F: f,
		Metrics:         reg,
		CheckpointEvery: *ckptEvery,
		// The sink serves both cadenced checkpoints and the interrupt
		// flush, so a Ctrl-C always leaves a resumable file behind (as long
		// as at least one epoch completed).
		OnCheckpoint: func(c *core.Checkpoint) error {
			if err := core.SaveCheckpointFile(*ckptPath, c); err != nil {
				return err
			}
			wroteCkpt = true
			return nil
		},
	}
	if *resume != "" {
		c, err := core.LoadCheckpointFile(*resume)
		if err != nil {
			return fmt.Errorf("train: %w", err)
		}
		td.Resume = c
		fmt.Printf("resuming from %s at epoch %d/%d\n", *resume, c.Epoch, cfg.Epochs)
	}
	start := time.Now()
	h, err := m.TrainCtx(ctx, td)
	if err != nil {
		if ctx.Err() != nil && wroteCkpt {
			return fmt.Errorf("%w (checkpoint saved; rerun with -resume %s)", err, *ckptPath)
		}
		return err
	}
	if err := core.SaveEncoderFile(*out, enc); err != nil {
		return err
	}
	fmt.Printf("trained %s encoder on %s (%s) for %v epochs: best validation HR@10 %.4f at epoch %d, %d triplets (%v) -> %s\n",
		kind, ds.Name, f, cfg.Epochs, h.BestHR10, h.BestEpoch, h.Triplets,
		time.Since(start).Round(time.Millisecond), *out)
	if len(h.Diverged) > 0 {
		fmt.Printf("divergence guard tripped at epoch(s) %v; rolled back and replayed at reduced LR\n", h.Diverged)
	}
	if *stats {
		serve.WriteStats(os.Stdout, reg)
	}
	return nil
}

func cmdSearch(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("search", flag.ExitOnError)
	modelPath := fs.String("model", "model.gob", "trained encoder path (ignored by training-free encoders)")
	in := fs.String("data", "dataset.gob", "dataset path; queries search its database split")
	encoderKind := fs.String("encoder", "",
		"encoder kind: "+strings.Join(core.EncoderKinds(), " | ")+
			"; training-free kinds build from the dataset, trainable kinds load -model and must match (default: whatever -model holds)")
	scale := fs.String("scale", "small", "config scale for training-free encoders built on the fly")
	k := fs.Int("k", 10, "number of results per query")
	strategy := fs.String("strategy", "hamming-hybrid",
		"search backend: "+strings.Join(traj2hash.Backends(), " | "))
	numQueries := fs.Int("queries", 5, "number of queries to run")
	workers := fs.Int("workers", 0, "parallel workers for embedding and search (0 = GOMAXPROCS)")
	shards := fs.Int("shards", 1, "database shards (queries fan out across shards in parallel)")
	timeout := fs.Duration("timeout", 0,
		"overall search deadline; on expiry partial results are printed and flagged (0 = none)")
	debugAddrFlag := fs.String("debug-addr", "",
		"serve /metrics, /trace and pprof on this address while searching (e.g. :6060; binds 127.0.0.1 unless a host is given; default off)")
	stats := fs.Bool("stats", false, "print a metrics summary after the queries")
	walDir := fs.String("wal-dir", "",
		"durability directory: mutations are write-ahead logged there and a prior run's state is recovered on startup — the dataset's database split only seeds an index that recovered nothing (default off: in-memory)")
	snapshotEvery := fs.Int("snapshot-every", 0,
		"with -wal-dir, snapshot cadence in logged mutations; smaller bounds recovery replay, larger appends faster (0 = default 1024, negative = log-only)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	reg := obs.Default()
	if *debugAddrFlag != "" {
		bound, err := serve.StartDebugServer(ctx, *debugAddrFlag, reg)
		if err != nil {
			return err
		}
		fmt.Printf("debug server on http://%s (metrics, trace, pprof)\n", bound)
	}

	ds, err := data.Load(*in)
	if err != nil {
		return err
	}
	enc, err := searchEncoder(*encoderKind, *modelPath, *scale, ds)
	if err != nil {
		return err
	}
	queries := ds.Queries
	if *numQueries < len(queries) {
		queries = queries[:*numQueries]
	}

	// The CLI serves queries through the same engine as the public API:
	// the -strategy backend behind a sharded, concurrent index.
	buildStart := time.Now()
	idx, err := traj2hash.NewIndexWith(enc, ds.Database, traj2hash.Options{
		Backend:       *strategy,
		Shards:        *shards,
		Workers:       *workers,
		Metrics:       reg,
		WALDir:        *walDir,
		SnapshotEvery: *snapshotEvery,
	})
	if err != nil {
		return err
	}
	defer func() {
		if err := idx.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "warning: closing durable index: %v\n", err)
		}
	}()
	if rec := idx.Recovery(); rec.Recovered {
		torn := ""
		if rec.TornTail {
			torn = "; truncated a torn final record (crash mid-append)"
		}
		fmt.Printf("recovered %d trajectories from %s (%d from snapshot, %d replayed from the log%s)\n",
			idx.Len(), *walDir, rec.FromSnapshot, rec.Replayed, torn)
	}
	fmt.Printf("indexed %d trajectories in %v (%s encoder, %s backend, %d shard(s))\n",
		idx.Len(), time.Since(buildStart).Round(time.Millisecond), enc.Kind(), idx.Backend(), *shards)

	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	start := time.Now()
	results, statuses := idx.SearchBatchCtx(ctx, queries, *k)
	elapsed := time.Since(start)
	degraded := 0
	for qi, res := range results {
		ids := make([]int, len(res))
		for i, r := range res {
			ids[i] = r.ID
		}
		note := ""
		if !statuses[qi].Complete {
			degraded++
			note = fmt.Sprintf("  [partial: %d/%d shards answered]", statuses[qi].ShardsOK, *shards)
		}
		fmt.Printf("query %d (%d points): top-%d database ids %v%s\n", qi, len(queries[qi]), *k, ids, note)
	}
	if degraded > 0 {
		fmt.Printf("warning: %d/%d queries returned partial results (deadline or shard failure)\n",
			degraded, len(queries))
	}
	fmt.Printf("%s: %d queries (embed+search) in %v (%v/query)\n",
		idx.Backend(), len(queries), elapsed.Round(time.Microsecond),
		(elapsed / time.Duration(len(queries))).Round(time.Microsecond))
	if *strategy == traj2hash.BackendHammingHybrid || *strategy == "" {
		// One count per per-shard lookup, so the total can exceed the
		// query count when the index is sharded.
		fmt.Printf("hybrid fast-path hits: %d (%d queries x %d shards)\n",
			idx.HybridFastPaths(), len(queries), *shards)
	}
	if *stats {
		serve.WriteStats(os.Stdout, reg)
	}
	return nil
}

// searchEncoder resolves the encoder a search-like subcommand runs with:
// with no -encoder flag it loads whatever the model file holds; a
// training-free kind (geopth) is built from the dataset on the fly — no
// model file and no training run needed; a trainable kind loads the model
// file and insists the stored encoder matches.
func searchEncoder(kindFlag, modelPath, scale string, ds *data.Dataset) (core.Encoder, error) {
	if kindFlag == "" {
		return core.LoadEncoderFile(modelPath)
	}
	kind, err := core.ResolveEncoderKind(kindFlag)
	if err != nil {
		return nil, err
	}
	if kind == core.GeoPTHKind {
		sc, err := experiments.ParseScale(scale)
		if err != nil {
			return nil, err
		}
		cfg := experiments.ParamsFor(sc).CoreConfig()
		return core.NewEncoder(kind, cfg, ds.All())
	}
	enc, err := core.LoadEncoderFile(modelPath)
	if err != nil {
		return nil, err
	}
	if enc.Kind() != kind {
		return nil, fmt.Errorf("search: %s holds a %q encoder, but -encoder %s was requested; train one with 'traj2hash train -encoder %s'",
			modelPath, enc.Kind(), kind, kind)
	}
	return enc, nil
}

// cmdBench times each encoder kind's embed and hash throughput on a
// dataset. Encoders are built fresh and left untrained: training changes
// the parameter values, not the arithmetic, so throughput is identical
// and no model files are needed.
func cmdBench(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("bench", flag.ExitOnError)
	in := fs.String("data", "dataset.gob", "dataset path (from gen)")
	scale := fs.String("scale", "small", "encoder config scale: tiny|small|medium|paper")
	kinds := fs.String("encoders", strings.Join(core.EncoderKinds(), ","),
		"comma-separated encoder kinds to benchmark")
	n := fs.Int("n", 100, "number of trajectories to embed per measurement")
	workers := fs.Int("workers", 0, "workers for the parallel embed pass (0 = GOMAXPROCS)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	ds, err := data.Load(*in)
	if err != nil {
		return err
	}
	sc, err := experiments.ParseScale(*scale)
	if err != nil {
		return err
	}
	cfg := experiments.ParamsFor(sc).CoreConfig()
	ts := ds.Database
	if *n < len(ts) {
		ts = ts[:*n]
	}
	if len(ts) == 0 {
		return fmt.Errorf("bench: dataset has no database trajectories")
	}
	fmt.Printf("benchmarking %d trajectories per pass (scale %s, %d bits)\n", len(ts), sc, cfg.HashBits)
	for _, kindFlag := range strings.Split(*kinds, ",") {
		if cerr := ctx.Err(); cerr != nil {
			return cerr
		}
		kind, err := core.ResolveEncoderKind(strings.TrimSpace(kindFlag))
		if err != nil {
			return err
		}
		buildStart := time.Now()
		enc, err := core.NewEncoder(kind, cfg, ds.All())
		if err != nil {
			return err
		}
		buildDur := time.Since(buildStart)

		embStart := time.Now()
		enc.EmbedAll(ts)
		embDur := time.Since(embStart)

		parStart := time.Now()
		enc.EmbedAllParallel(ts, *workers)
		parDur := time.Since(parStart)

		codeStart := time.Now()
		enc.CodeAll(ts)
		codeDur := time.Since(codeStart)

		per := func(d time.Duration) string {
			return fmt.Sprintf("%.1fµs", float64(d.Nanoseconds())/float64(len(ts))/1e3)
		}
		fmt.Printf("%-10s build %8v | embed %s/traj | parallel %s/traj | code %s/traj\n",
			kind, buildDur.Round(time.Millisecond), per(embDur), per(parDur), per(codeDur))
	}
	return nil
}

func cmdExperiment(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("experiment", flag.ExitOnError)
	scale := fs.String("scale", "tiny", "experiment scale: tiny|small|medium|paper")
	verbose := fs.Bool("v", false, "log per-cell progress")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() < 1 {
		return fmt.Errorf("experiment: need an id (table1..3, fig4..9, extra-cdtw)")
	}
	sc, err := experiments.ParseScale(*scale)
	if err != nil {
		return err
	}
	for _, id := range fs.Args() {
		// Cancellation is checked between experiments (coarse-grained: a
		// running experiment finishes its current table before exiting).
		if cerr := ctx.Err(); cerr != nil {
			return fmt.Errorf("experiment: interrupted before %s: %w", id, cerr)
		}
		exp, err := experiments.Lookup(id)
		if err != nil {
			return err
		}
		var log *os.File
		if *verbose {
			log = os.Stderr
		}
		start := time.Now()
		tbl, err := exp.Run(sc, log)
		if err != nil {
			return err
		}
		tbl.Fprint(os.Stdout)
		fmt.Printf("(%s at scale %s in %v)\n", exp.ID, sc, time.Since(start).Round(time.Millisecond))
		if claims := experiments.PaperClaims[exp.ID]; len(claims) > 0 {
			fmt.Println("paper claims to compare against:")
			for _, c := range claims {
				fmt.Printf("  - %s\n", c)
			}
		}
	}
	return nil
}

func cmdAll(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("all", flag.ExitOnError)
	scale := fs.String("scale", "tiny", "experiment scale: tiny|small|medium|paper")
	if err := fs.Parse(args); err != nil {
		return err
	}
	ids := make([]string, 0, len(experiments.All()))
	for _, e := range experiments.All() {
		ids = append(ids, e.ID)
	}
	return cmdExperiment(ctx, append([]string{"-scale", *scale}, ids...))
}
