package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleBench = `goos: linux
goarch: amd64
pkg: traj2hash/internal/topk
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkHotpathTopKSelect-4   	     100	     48733 ns/op	       0 B/op	       0 allocs/op
PASS
ok  	traj2hash/internal/topk	0.009s
pkg: traj2hash/internal/core
BenchmarkHotpathEmbedAll 	      50	    949201 ns/op	 1255685 B/op	    4282 allocs/op
PASS
`

func TestParseBench(t *testing.T) {
	got, err := parseBench(strings.NewReader(sampleBench))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2: %v", len(got), got)
	}
	sel, ok := got["BenchmarkHotpathTopKSelect"]
	if !ok {
		t.Fatal("CPU suffix not stripped from BenchmarkHotpathTopKSelect-4")
	}
	if sel.NsPerOp != 48733 || sel.AllocsPerOp != 0 || sel.BytesPerOp != 0 {
		t.Errorf("TopKSelect parsed as %+v", sel)
	}
	emb := got["BenchmarkHotpathEmbedAll"]
	if emb.NsPerOp != 949201 || emb.AllocsPerOp != 4282 || emb.BytesPerOp != 1255685 {
		t.Errorf("EmbedAll parsed as %+v", emb)
	}
}

func TestParseBenchIgnoresNonBenchLines(t *testing.T) {
	got, err := parseBench(strings.NewReader("PASS\nok pkg 0.1s\nBenchmarkBroken FAIL\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("parsed %d benchmarks from noise, want 0", len(got))
	}
}

func TestTrimCPUSuffix(t *testing.T) {
	cases := map[string]string{
		"BenchmarkX-4":      "BenchmarkX",
		"BenchmarkX-16":     "BenchmarkX",
		"BenchmarkX":        "BenchmarkX",
		"BenchmarkTop-K-8":  "BenchmarkTop-K",
		"BenchmarkOdd-name": "BenchmarkOdd-name",
	}
	for in, want := range cases {
		if got := trimCPUSuffix(in); got != want {
			t.Errorf("trimCPUSuffix(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestCheckFloors(t *testing.T) {
	results := map[string]result{
		"BenchmarkA": {AllocsPerOp: 0},
		"BenchmarkB": {AllocsPerOp: 7},
	}
	if v := checkFloors(results, map[string]float64{"BenchmarkA": 0, "BenchmarkB": 10}); len(v) != 0 {
		t.Errorf("floors hold but got violations: %v", v)
	}
	v := checkFloors(results, map[string]float64{"BenchmarkB": 5, "BenchmarkGone": 0})
	if len(v) != 2 {
		t.Fatalf("want 2 violations (over floor + missing), got %v", v)
	}
	if !strings.Contains(v[0], "exceeds") || !strings.Contains(v[1], "absent") {
		t.Errorf("violations sorted/worded unexpectedly: %v", v)
	}
}

func TestRunEndToEnd(t *testing.T) {
	dir := t.TempDir()
	floors := filepath.Join(dir, "floors.json")
	out := filepath.Join(dir, "BENCH.json")
	if err := os.WriteFile(floors, []byte(`{"_comment":"doc","BenchmarkHotpathTopKSelect":0}`), 0o644); err != nil {
		t.Fatal(err)
	}
	var stdout, stderr bytes.Buffer
	code := run([]string{"-floors", floors, "-out", out},
		strings.NewReader(sampleBench), &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr.String())
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var artifact map[string]result
	if err := json.Unmarshal(data, &artifact); err != nil {
		t.Fatalf("artifact is not valid JSON: %v", err)
	}
	if len(artifact) != 2 {
		t.Errorf("artifact holds %d entries, want 2", len(artifact))
	}

	// A floor below the measured allocs must fail with exit 1.
	if err := os.WriteFile(floors, []byte(`{"BenchmarkHotpathEmbedAll":100}`), 0o644); err != nil {
		t.Fatal(err)
	}
	stderr.Reset()
	code = run([]string{"-floors", floors}, strings.NewReader(sampleBench), &stdout, &stderr)
	if code != 1 {
		t.Fatalf("regression not detected: exit %d, stderr: %s", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "exceeds the recorded floor") {
		t.Errorf("stderr missing violation message: %s", stderr.String())
	}
}

func TestRunBadInputs(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-bogus"}, strings.NewReader(""), &stdout, &stderr); code != 2 {
		t.Errorf("unknown flag: exit %d, want 2", code)
	}
	if code := run(nil, strings.NewReader("no benchmarks here\n"), &stdout, &stderr); code != 2 {
		t.Errorf("empty input: exit %d, want 2", code)
	}
	if code := run([]string{"-floors", "/nonexistent/floors.json"},
		strings.NewReader(sampleBench), &stdout, &stderr); code != 2 {
		t.Errorf("missing floors file: exit %d, want 2", code)
	}
}
