// Command benchjson turns `go test -bench -benchmem` output into a JSON
// artifact and gates allocation counts against a recorded floor.
//
// It reads benchmark output on stdin, writes a map of benchmark name to
// {ns_per_op, bytes_per_op, allocs_per_op} to -out, and — when -floors
// names a JSON file of benchmark name to maximum allocs/op — fails (exit
// 1) if any gated benchmark allocates more than its floor or is missing
// from the input entirely. Wall-clock numbers are recorded but never
// gated: ns/op is too noisy to fail a build on, allocs/op is exact.
//
// Usage:
//
//	go test -bench 'BenchmarkHotpath' -benchmem -run '^$' ./... |
//	    benchjson -floors scripts/hotpath_floors.json -out bin/BENCH_hotpath.json
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// result holds the parsed measurements of one benchmark.
type result struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	var floorsPath, outPath string
	for i := 0; i < len(args); i++ {
		switch args[i] {
		case "-floors":
			i++
			if i >= len(args) {
				fmt.Fprintln(stderr, "benchjson: -floors needs a file argument")
				return 2
			}
			floorsPath = args[i]
		case "-out":
			i++
			if i >= len(args) {
				fmt.Fprintln(stderr, "benchjson: -out needs a file argument")
				return 2
			}
			outPath = args[i]
		default:
			fmt.Fprintf(stderr, "benchjson: unknown argument %q (want -floors FILE, -out FILE)\n", args[i])
			return 2
		}
	}

	results, err := parseBench(stdin)
	if err != nil {
		fmt.Fprintf(stderr, "benchjson: %v\n", err)
		return 2
	}
	if len(results) == 0 {
		fmt.Fprintln(stderr, "benchjson: no benchmark lines found in input")
		return 2
	}

	if outPath != "" {
		data, err := json.MarshalIndent(results, "", "  ")
		if err != nil {
			fmt.Fprintf(stderr, "benchjson: encode artifact: %v\n", err)
			return 2
		}
		if err := os.WriteFile(outPath, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintf(stderr, "benchjson: write artifact: %v\n", err)
			return 2
		}
	}

	if floorsPath == "" {
		return 0
	}
	floors, err := loadFloors(floorsPath)
	if err != nil {
		fmt.Fprintf(stderr, "benchjson: %v\n", err)
		return 2
	}
	violations := checkFloors(results, floors)
	for _, v := range violations {
		fmt.Fprintln(stderr, "benchjson: "+v)
	}
	if len(violations) > 0 {
		fmt.Fprintf(stderr, "benchjson: %d allocation floor violation(s) — the //perf:hotpath contract regressed; floors live in %s\n",
			len(violations), floorsPath)
		return 1
	}
	fmt.Fprintf(stdout, "benchjson: %d benchmarks recorded, %d allocation floors hold\n", len(results), len(floors))
	return 0
}

// parseBench extracts benchmark results from `go test -bench -benchmem`
// output. A benchmark line looks like
//
//	BenchmarkHotpathTopKSelect-4   100   48733 ns/op   20 B/op   0 allocs/op
//
// (the -4 GOMAXPROCS suffix is stripped). Non-benchmark lines are
// ignored; duplicate names (e.g. from -count) keep the last measurement.
func parseBench(r io.Reader) (map[string]result, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("read input: %w", err)
	}
	out := make(map[string]result)
	for _, line := range strings.Split(string(data), "\n") {
		fields := strings.Fields(line)
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		if _, err := strconv.Atoi(fields[1]); err != nil {
			continue // not an iteration count; e.g. "BenchmarkX ... FAIL"
		}
		var res result
		seen := false
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				break
			}
			switch fields[i+1] {
			case "ns/op":
				res.NsPerOp = v
				seen = true
			case "B/op":
				res.BytesPerOp = v
			case "allocs/op":
				res.AllocsPerOp = v
			}
		}
		if seen {
			out[trimCPUSuffix(fields[0])] = res
		}
	}
	return out, nil
}

// trimCPUSuffix removes the trailing -<GOMAXPROCS> that go test appends
// to benchmark names.
func trimCPUSuffix(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

// loadFloors reads the benchmark-name → max-allocs/op map. Keys starting
// with "_" are documentation (JSON has no comments) and are skipped;
// every other value must be a number.
func loadFloors(path string) (map[string]float64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("read floors: %w", err)
	}
	var raw map[string]json.RawMessage
	if err := json.Unmarshal(data, &raw); err != nil {
		return nil, fmt.Errorf("parse floors %s: %w", path, err)
	}
	floors := make(map[string]float64, len(raw))
	for name, msg := range raw {
		if strings.HasPrefix(name, "_") {
			continue
		}
		var v float64
		if err := json.Unmarshal(msg, &v); err != nil {
			return nil, fmt.Errorf("parse floors %s: entry %q is not a number: %w", path, name, err)
		}
		floors[name] = v
	}
	return floors, nil
}

// checkFloors returns one message per violation: a gated benchmark that
// allocated above its floor, or that is missing from the results (a
// rename or deletion must update the floors file, not silently drop the
// gate).
func checkFloors(results map[string]result, floors map[string]float64) []string {
	names := make([]string, 0, len(floors))
	for name := range floors {
		names = append(names, name)
	}
	sort.Strings(names)
	var out []string
	for _, name := range names {
		res, ok := results[name]
		if !ok {
			out = append(out, fmt.Sprintf("%s: gated by a floor but absent from the benchmark output", name))
			continue
		}
		if res.AllocsPerOp > floors[name] {
			out = append(out, fmt.Sprintf("%s: %.0f allocs/op exceeds the recorded floor of %.0f",
				name, res.AllocsPerOp, floors[name]))
		}
	}
	return out
}
