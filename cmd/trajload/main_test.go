package main

import (
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestParseMix(t *testing.T) {
	w, err := parseMix("search=0.9,add=0.1")
	if err != nil {
		t.Fatal(err)
	}
	if w["search"] != 0.9 || w["add"] != 0.1 {
		t.Fatalf("weights %v, want search=0.9 add=0.1", w)
	}
	for _, bad := range []string{"", "search", "fly=1", "search=-1", "search=0,add=0"} {
		if _, err := parseMix(bad); err == nil {
			t.Errorf("parseMix(%q) accepted invalid input", bad)
		}
	}
}

func TestPickOpFollowsWeights(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	w := map[string]float64{"search": 0.5, "add": 0.5}
	counts := map[string]int{}
	for i := 0; i < 2000; i++ {
		counts[pickOp(rng, w)]++
	}
	if counts["search"] < 800 || counts["add"] < 800 {
		t.Fatalf("2000 draws at 50/50 gave %v; want both ops near 1000", counts)
	}
	if counts["update"]+counts["delete"] != 0 {
		t.Fatalf("zero-weight ops drawn: %v", counts)
	}
	// A single-op mix always yields that op.
	for i := 0; i < 100; i++ {
		if op := pickOp(rng, map[string]float64{"delete": 1}); op != "delete" {
			t.Fatalf("single-op mix drew %q", op)
		}
	}
}

func TestWriteBenchLines(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.txt")
	if err := writeBenchLines(path, 0, 1, 2, 3); err == nil {
		t.Fatal("writeBenchLines accepted an empty histogram")
	}
	if err := writeBenchLines(path, 42, 0.001, 0.002, 0.004); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	got := string(b)
	for _, want := range []string{
		"BenchmarkServingSearchP50 42 1000000 ns/op",
		"BenchmarkServingSearchP99 42 2000000 ns/op",
		"BenchmarkServingSearchP999 42 4000000 ns/op",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("bench file missing %q:\n%s", want, got)
		}
	}
}
