// Command trajload is a load generator for traj2hashd: it replays a
// Zipf-skewed query mix from a dataset against a running daemon with
// bounded concurrency and reports outcome counts plus p50/p99/p999
// request latency.
//
//	trajload -addr 127.0.0.1:8080 -data dataset.gob -n 1000 -c 16
//
// With -n 0 it runs until the daemon refuses connections — aim a
// SIGTERM at the daemon mid-run to exercise graceful drain: every
// request the daemon accepted must complete (the "dropped" count must
// stay zero), and connection-refused after drain is the expected way
// the run ends. The exit status is the verdict: non-zero when any
// accepted request was dropped, when nothing succeeded at all, or when
// -max-p99 was exceeded.
package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"traj2hash"
	"traj2hash/internal/data"
	"traj2hash/internal/obs"
	"traj2hash/internal/serve"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "trajload:", err)
		os.Exit(1)
	}
}

// tally is the shared outcome ledger. Everything is atomic: workers
// bump counts concurrently and main reads them after Wait.
type tally struct {
	ok         atomic.Int64 // 200 with complete=true
	partial    atomic.Int64 // 200 with complete=false (degraded but answered)
	shed       atomic.Int64 // 503: admission control refused before accepting
	timeouts   atomic.Int64 // 504: deadline hit
	clientErr  atomic.Int64 // 4xx and other non-success statuses
	refused    atomic.Int64 // connection refused: the daemon is not accepting (expected after drain)
	dropped    atomic.Int64 // accepted then died mid-flight — the drain-correctness violation
	maxBatched atomic.Int64 // largest coalesced batch any response rode in
}

func run(args []string) error {
	fs := flag.NewFlagSet("trajload", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:8080", "daemon address (host:port)")
	in := fs.String("data", "dataset.gob", "dataset path; its query split is the request pool")
	n := fs.Int("n", 200, "total requests (0 = run until the daemon refuses connections)")
	c := fs.Int("c", 8, "concurrent workers")
	k := fs.Int("k", 10, "results per search")
	timeoutMS := fs.Int("timeout-ms", 0, "per-request deadline sent to the daemon (0 = daemon default)")
	zipfS := fs.Float64("zipf-s", 1.1, "Zipf skew exponent over the query pool (s > 1)")
	zipfV := fs.Float64("zipf-v", 1.0, "Zipf v parameter (v >= 1)")
	seed := fs.Int64("seed", 1, "workload seed (worker i uses seed+i)")
	mix := fs.String("mix", "search=0.9,add=0.1",
		"operation mix, comma-separated op=weight (ops: search add update delete; update/delete apply only to ids this run added, else fall back to search)")
	jsonOut := fs.Bool("json", false, "print the summary as JSON instead of text")
	benchOut := fs.String("bench-out", "",
		"append Go-benchmark-style latency lines (ns/op) to this file for cmd/benchjson")
	maxP99 := fs.Duration("max-p99", 0, "fail (exit 1) if search p99 exceeds this (0 = no gate)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *zipfS <= 1 || *zipfV < 1 {
		return fmt.Errorf("need -zipf-s > 1 and -zipf-v >= 1")
	}
	weights, err := parseMix(*mix)
	if err != nil {
		return err
	}

	ds, err := data.Load(*in)
	if err != nil {
		return err
	}
	pool := append(append([]traj2hash.Trajectory{}, ds.Queries...), ds.Database...)
	if len(pool) == 0 {
		return fmt.Errorf("dataset %s has no queries or database trajectories", *in)
	}

	base := "http://" + serve.ListenAddr(*addr)
	reg := obs.New()
	lat := reg.Histogram("load.search.seconds", obs.FineLatencyBounds())
	var t tally
	var done atomic.Int64 // requests issued so far (against -n)

	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < *c; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(*seed + int64(w)))
			zipf := rand.NewZipf(rng, *zipfS, *zipfV, uint64(len(pool)-1))
			client := &http.Client{Timeout: 30 * time.Second}
			var myIDs []int // ids this worker added; update/delete targets
			for {
				if *n > 0 && done.Add(1) > int64(*n) {
					return
				}
				op := pickOp(rng, weights)
				if (op == "update" || op == "delete") && len(myIDs) == 0 {
					op = "search" // nothing of ours to mutate yet
				}
				traj := pool[zipf.Uint64()]
				var stop bool
				switch op {
				case "search":
					stop = doSearch(client, base, traj, *k, *timeoutMS, &t, lat)
				case "add":
					stop = doAdd(client, base, traj, *timeoutMS, &t, &myIDs)
				case "update":
					id := myIDs[rng.Intn(len(myIDs))]
					stop = doMutate(client, base+"/update", serve.MutateRequest{ID: id, Traj: serve.FromTrajectory(traj), TimeoutMS: *timeoutMS}, &t, nil)
				case "delete":
					i := rng.Intn(len(myIDs))
					id := myIDs[i]
					myIDs = append(myIDs[:i], myIDs[i+1:]...)
					stop = doMutate(client, base+"/delete", serve.MutateRequest{ID: id, TimeoutMS: *timeoutMS}, &t, nil)
				}
				if stop {
					return // the daemon stopped accepting: this run is over
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	snap := lat.Snapshot()
	p50, p99, p999 := snap.Quantile(0.50), snap.Quantile(0.99), snap.Quantile(0.999)
	issued := t.ok.Load() + t.partial.Load() + t.shed.Load() + t.timeouts.Load() +
		t.clientErr.Load() + t.refused.Load() + t.dropped.Load()

	if *jsonOut {
		b, err := json.MarshalIndent(map[string]any{
			"issued": issued, "ok": t.ok.Load(), "partial": t.partial.Load(),
			"shed": t.shed.Load(), "timeouts": t.timeouts.Load(),
			"client_errors": t.clientErr.Load(), "refused": t.refused.Load(),
			"dropped": t.dropped.Load(), "max_batched": t.maxBatched.Load(),
			"elapsed_seconds": elapsed.Seconds(),
			"p50_seconds":     p50, "p99_seconds": p99, "p999_seconds": p999,
		}, "", "  ")
		if err != nil {
			return err
		}
		fmt.Println(string(b))
	} else {
		fmt.Printf("%d requests in %v (%.0f req/s): %d ok, %d partial, %d shed, %d timeout, %d client-error, %d refused, %d dropped\n",
			issued, elapsed.Round(time.Millisecond), float64(issued)/elapsed.Seconds(),
			t.ok.Load(), t.partial.Load(), t.shed.Load(), t.timeouts.Load(),
			t.clientErr.Load(), t.refused.Load(), t.dropped.Load())
		fmt.Printf("search latency p50 %.3fms p99 %.3fms p999 %.3fms; max coalesced batch %d\n",
			p50*1e3, p99*1e3, p999*1e3, t.maxBatched.Load())
	}
	if *benchOut != "" {
		if err := writeBenchLines(*benchOut, snap.Count, p50, p99, p999); err != nil {
			return err
		}
	}

	if t.dropped.Load() > 0 {
		return fmt.Errorf("%d accepted requests were dropped mid-flight (graceful drain violated)", t.dropped.Load())
	}
	if t.ok.Load()+t.partial.Load() == 0 {
		return fmt.Errorf("no request succeeded (is the daemon up at %s?)", base)
	}
	if *maxP99 > 0 && p99 > maxP99.Seconds() {
		return fmt.Errorf("search p99 %.3fms exceeds -max-p99 %v", p99*1e3, *maxP99)
	}
	return nil
}

// parseMix parses "search=0.9,add=0.1" into op weights.
func parseMix(s string) (map[string]float64, error) {
	w := map[string]float64{}
	for _, part := range strings.Split(s, ",") {
		op, val, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return nil, fmt.Errorf("mix entry %q is not op=weight", part)
		}
		switch op {
		case "search", "add", "update", "delete":
		default:
			return nil, fmt.Errorf("unknown op %q in -mix", op)
		}
		f, err := strconv.ParseFloat(val, 64)
		if err != nil || f < 0 {
			return nil, fmt.Errorf("bad weight %q for op %q", val, op)
		}
		w[op] += f
	}
	total := 0.0
	for _, f := range w {
		total += f
	}
	if total <= 0 {
		return nil, fmt.Errorf("mix %q has no positive weight", s)
	}
	return w, nil
}

// pickOp draws one operation from the weight table.
func pickOp(rng *rand.Rand, w map[string]float64) string {
	total := 0.0
	for _, f := range w {
		total += f
	}
	x := rng.Float64() * total
	// Fixed iteration order so the draw is reproducible per seed.
	for _, op := range []string{"search", "add", "update", "delete"} {
		x -= w[op]
		if x < 0 && w[op] > 0 {
			return op
		}
	}
	return "search"
}

// post issues one POST, classifying transport errors into the tally.
// The returned response is nil when the request did not complete; stop
// is true when the daemon is no longer accepting connections.
func post(client *http.Client, url string, body any, t *tally) (resp *http.Response, stop bool) {
	b, err := json.Marshal(body)
	if err != nil {
		t.clientErr.Add(1)
		return nil, false
	}
	resp, err = client.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		if errors.Is(err, syscall.ECONNREFUSED) {
			// Never accepted: the listener is closed (post-drain). Expected
			// end of a -n 0 run, not a correctness violation.
			t.refused.Add(1)
			return nil, true
		}
		// Accepted (or mid-handshake) and then the connection died: the
		// daemon lost a request it had taken. This is what graceful drain
		// must prevent.
		t.dropped.Add(1)
		return nil, false
	}
	return resp, false
}

func doSearch(client *http.Client, base string, traj traj2hash.Trajectory, k, timeoutMS int, t *tally, lat *obs.Histogram) bool {
	req := serve.SearchRequest{Traj: serve.FromTrajectory(traj), K: k, TimeoutMS: timeoutMS}
	start := time.Now()
	resp, stop := post(client, base+"/search", req, t)
	if resp == nil {
		return stop
	}
	defer resp.Body.Close()
	var sr serve.SearchResponse
	decodeErr := json.NewDecoder(resp.Body).Decode(&sr)
	switch {
	case resp.StatusCode == http.StatusOK && decodeErr == nil:
		lat.Observe(time.Since(start).Seconds())
		if sr.Complete {
			t.ok.Add(1)
		} else {
			t.partial.Add(1)
		}
		for { // CAS max
			cur := t.maxBatched.Load()
			if int64(sr.Batched) <= cur || t.maxBatched.CompareAndSwap(cur, int64(sr.Batched)) {
				break
			}
		}
	case resp.StatusCode == http.StatusServiceUnavailable:
		t.shed.Add(1)
	case resp.StatusCode == http.StatusGatewayTimeout:
		t.timeouts.Add(1)
	default:
		t.clientErr.Add(1)
	}
	return false
}

func doAdd(client *http.Client, base string, traj traj2hash.Trajectory, timeoutMS int, t *tally, ids *[]int) bool {
	req := serve.MutateRequest{Traj: serve.FromTrajectory(traj), TimeoutMS: timeoutMS}
	return doMutate(client, base+"/add", req, t, ids)
}

// doMutate issues one mutation; when ids is non-nil a successful add's
// id is appended to it.
func doMutate(client *http.Client, url string, req serve.MutateRequest, t *tally, ids *[]int) bool {
	resp, stop := post(client, url, req, t)
	if resp == nil {
		return stop
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
		t.ok.Add(1)
		if ids != nil {
			var mr serve.MutateResponse
			if err := json.NewDecoder(resp.Body).Decode(&mr); err == nil {
				*ids = append(*ids, mr.ID)
			}
		}
	case http.StatusServiceUnavailable:
		t.shed.Add(1)
	case http.StatusGatewayTimeout:
		t.timeouts.Add(1)
	case http.StatusNotFound, http.StatusGone:
		// A racing delete (or server restart) is a legal outcome for a
		// mutation mix, not a load-generator failure.
		t.ok.Add(1)
	default:
		t.clientErr.Add(1)
	}
	//lint:ignore errcheck draining the body just recycles the connection; the status was already read
	io.Copy(io.Discard, resp.Body)
	return false
}

// writeBenchLines appends Go-testing-style benchmark lines so
// cmd/benchjson can publish the quantiles as a BENCH artifact.
func writeBenchLines(path string, count int64, p50, p99, p999 float64) error {
	if count == 0 {
		return fmt.Errorf("-bench-out: no search latencies recorded")
	}
	var sb strings.Builder
	for _, q := range []struct {
		name string
		sec  float64
	}{{"P50", p50}, {"P99", p99}, {"P999", p999}} {
		fmt.Fprintf(&sb, "BenchmarkServingSearch%s %d %.0f ns/op\n", q.name, count, q.sec*1e9)
	}
	f, err := os.OpenFile(path, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.WriteString(sb.String()); err != nil {
		//lint:ignore errcheck the write error is already being returned; close is best-effort
		f.Close()
		return err
	}
	return f.Close()
}
