// Command trajlint runs the repo's static-analysis rule suite
// (internal/analysis) over the module: stdlib-only, no go/packages, no
// external analyzers. It is a CI gate with meaningful exit codes:
//
//	0  clean — no diagnostic survived the //lint:ignore suppressions
//	1  findings — the analysis ran and reported at least one diagnostic
//	2  trajlint itself failed — bad flags, unknown rule, unloadable code
//
//	trajlint ./...                   # whole module
//	trajlint -rules deferunlock ./internal/engine
//	trajlint -json ./... | jq .
//	trajlint -fix ./...              # apply mechanical fixes, re-lint
//	trajlint -cache bin/trajlint-cache ./...   # warm runs skip unchanged packages
//
// Diagnostics print as "file:line:col rule: message" with paths relative
// to the working directory.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"traj2hash/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("trajlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	rulesFlag := fs.String("rules", "", "comma-separated rule names to run (default: all)")
	jsonFlag := fs.Bool("json", false, "emit diagnostics as a JSON array instead of text")
	dirFlag := fs.String("C", ".", "module directory to lint (must contain go.mod)")
	fixFlag := fs.Bool("fix", false, "apply suggested fixes, then re-analyze and report what remains")
	cacheFlag := fs.String("cache", "", "diagnostic cache directory (empty disables the cache)")
	jobsFlag := fs.Int("jobs", 0, "analysis parallelism (0 = GOMAXPROCS)")
	statsFlag := fs.Bool("stats", false, "report package/cache counts and per-rule timing on stderr")
	fs.Usage = func() { usage(fs, stderr) }
	if err := fs.Parse(args); err != nil {
		return 2
	}

	var ruleNames []string
	if *rulesFlag != "" {
		for _, n := range strings.Split(*rulesFlag, ",") {
			if n = strings.TrimSpace(n); n != "" {
				ruleNames = append(ruleNames, n)
			}
		}
	}
	rules, err := analysis.SelectRules(ruleNames)
	if err != nil {
		fmt.Fprintln(stderr, "trajlint:", err)
		return 2
	}

	// analyze runs one full pass with a fresh loader — after -fix
	// rewrites files, stale syntax trees must not leak into the re-run.
	analyze := func() ([]analysis.Diagnostic, analysis.DriverStats, error) {
		loader, err := analysis.NewLoader(*dirFlag)
		if err != nil {
			return nil, analysis.DriverStats{}, err
		}
		drv := &analysis.Driver{Loader: loader, Rules: rules, CacheDir: *cacheFlag, Jobs: *jobsFlag}
		return drv.Run(fs.Args())
	}

	diags, stats, err := analyze()
	if err != nil {
		fmt.Fprintln(stderr, "trajlint:", err)
		return 2
	}
	if *statsFlag {
		printStats(stderr, stats)
	}

	if *fixFlag {
		res, err := analysis.ApplyFixes(diags)
		if err != nil {
			fmt.Fprintln(stderr, "trajlint:", err)
			return 2
		}
		if res.Applied > 0 {
			fmt.Fprintf(stderr, "trajlint: applied %d fix(es) across %d file(s)", res.Applied, len(res.Changed))
			if res.Skipped > 0 {
				fmt.Fprintf(stderr, " (%d overlapping fix(es) skipped)", res.Skipped)
			}
			fmt.Fprintln(stderr)
			// Changed files mean changed content hashes, so the re-run
			// re-analyzes exactly the affected packages even with the
			// cache on.
			if diags, _, err = analyze(); err != nil {
				fmt.Fprintln(stderr, "trajlint:", err)
				return 2
			}
		}
	}
	relativize(diags)

	if *jsonFlag {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if diags == nil {
			diags = []analysis.Diagnostic{}
		}
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintln(stderr, "trajlint:", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(stdout, d)
		}
	}
	if len(diags) > 0 {
		if !*jsonFlag {
			fmt.Fprintf(stderr, "trajlint: %d finding(s)\n", len(diags))
		}
		return 1
	}
	return 0
}

// printStats reports package/cache counts and a per-rule table sorted
// slowest-first: wall time over cold packages (where the perf rules'
// compiler invocations show up, and why a warm cache run shows dashes)
// next to surviving finding counts over the whole run (cache entries
// replay final diagnostics, so counts are complete even when timing
// is not).
func printStats(w io.Writer, stats analysis.DriverStats) {
	fmt.Fprintf(w, "trajlint: %d package(s), %d cached, %d analyzed\n",
		stats.Packages, stats.CacheHits, stats.CacheMisses)
	names := map[string]bool{}
	for name := range stats.RuleTime {
		names[name] = true
	}
	for name, n := range stats.RuleFindings {
		if n > 0 {
			names[name] = true
		}
	}
	if len(names) == 0 {
		return
	}
	type rt struct {
		name string
		d    time.Duration
		n    int
	}
	var rts []rt
	for name := range names {
		rts = append(rts, rt{name, stats.RuleTime[name], stats.RuleFindings[name]})
	}
	sort.Slice(rts, func(i, j int) bool {
		if rts[i].d != rts[j].d {
			return rts[i].d > rts[j].d
		}
		return rts[i].name < rts[j].name
	})
	fmt.Fprintf(w, "trajlint: per-rule stats (timing covers cold packages only):\n")
	for _, r := range rts {
		t := "-"
		if r.d > 0 {
			t = r.d.Round(time.Microsecond).String()
		}
		fmt.Fprintf(w, "  %-14s %-12s %d finding(s)\n", r.name, t, r.n)
	}
}

// relativize rewrites absolute diagnostic paths relative to the working
// directory, keeping output stable across checkouts.
func relativize(diags []analysis.Diagnostic) {
	wd, err := os.Getwd()
	if err != nil {
		return
	}
	for i := range diags {
		if rel, err := filepath.Rel(wd, diags[i].File); err == nil && !strings.HasPrefix(rel, "..") {
			diags[i].File = rel
		}
	}
}

func usage(fs *flag.FlagSet, w io.Writer) {
	fmt.Fprintf(w, `usage: trajlint [flags] [packages]

trajlint enforces the repo's correctness contracts with a stdlib-only
analyzer suite. Packages default to ./...; a trailing /... walks
directories (testdata, vendor, and hidden directories are skipped).

Exit codes: 0 clean, 1 findings, 2 trajlint failure (bad flags,
unknown rule, unloadable packages).

Flags:
`)
	fs.PrintDefaults()
	fmt.Fprintf(w, "\nRules:\n")
	var rules []*analysis.Rule
	rules = append(rules, analysis.Rules()...)
	sort.Slice(rules, func(i, j int) bool { return rules[i].Name < rules[j].Name })
	for _, r := range rules {
		fmt.Fprintf(w, "  %-14s %s\n", r.Name, r.Doc)
	}
	fmt.Fprintf(w, `
Fixable rules (run with -fix to apply mechanically):
`)
	for _, r := range rules {
		if r.Fix != "" {
			fmt.Fprintf(w, "  %-14s %s\n", r.Name, r.Fix)
		}
	}
	fmt.Fprintf(w, `
Suppressions (reason is mandatory; a missing reason, an unknown rule, or
a suppression that no longer matches any finding is itself a diagnostic):
  //lint:ignore <rule> <reason>        suppresses <rule> on this line and the next
  //lint:file-ignore <rule> <reason>   suppresses <rule> in the whole file

Performance contracts (reason is mandatory; the directive must sit in a
function's doc comment — anywhere else it is a diagnostic):
  //perf:hotpath <reason>   the function must stay allocation-free and
                            bounds-check-free in loops; enforced by the
                            hotpathalloc, hotpathbce, and allocinloop
                            rules against real compiler diagnostics

Determinism contracts (reason is mandatory; the directive must sit in a
function's doc comment — anywhere else it is a diagnostic):
  //det:replayed <reason>   the function's results must be a pure
                            function of its inputs — it replays during
                            recovery or feeds serialized state; the
                            detmaprange, detwallclock, and detunordered
                            rules taint-check nondeterminism sources
                            (map iteration order, wall clock, global
                            rand, goroutine completion order) away from
                            its returns and the module's encode sinks
`)
}
