// Command trajlint runs the repo's static-analysis rule suite
// (internal/analysis) over the module: stdlib-only, no go/packages, no
// external analyzers. It exits non-zero when any diagnostic survives the
// //lint:ignore suppressions, which makes it a CI gate:
//
//	trajlint ./...                   # whole module
//	trajlint -rules deferunlock ./internal/engine
//	trajlint -json ./... | jq .
//
// Diagnostics print as "file:line:col rule: message" with paths relative
// to the working directory.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"traj2hash/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("trajlint", flag.ExitOnError)
	rulesFlag := fs.String("rules", "", "comma-separated rule names to run (default: all)")
	jsonFlag := fs.Bool("json", false, "emit diagnostics as a JSON array instead of text")
	dirFlag := fs.String("C", ".", "module directory to lint (must contain go.mod)")
	fs.Usage = func() { usage(fs, stderr) }
	if err := fs.Parse(args); err != nil {
		return 2
	}

	var ruleNames []string
	if *rulesFlag != "" {
		for _, n := range strings.Split(*rulesFlag, ",") {
			if n = strings.TrimSpace(n); n != "" {
				ruleNames = append(ruleNames, n)
			}
		}
	}
	rules, err := analysis.SelectRules(ruleNames)
	if err != nil {
		fmt.Fprintln(stderr, "trajlint:", err)
		return 2
	}

	loader, err := analysis.NewLoader(*dirFlag)
	if err != nil {
		fmt.Fprintln(stderr, "trajlint:", err)
		return 2
	}
	pkgs, err := loader.LoadPatterns(fs.Args())
	if err != nil {
		fmt.Fprintln(stderr, "trajlint:", err)
		return 2
	}

	diags := analysis.Run(pkgs, rules)
	relativize(diags)

	if *jsonFlag {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if diags == nil {
			diags = []analysis.Diagnostic{}
		}
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintln(stderr, "trajlint:", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(stdout, d)
		}
	}
	if len(diags) > 0 {
		if !*jsonFlag {
			fmt.Fprintf(stderr, "trajlint: %d finding(s)\n", len(diags))
		}
		return 1
	}
	return 0
}

// relativize rewrites absolute diagnostic paths relative to the working
// directory, keeping output stable across checkouts.
func relativize(diags []analysis.Diagnostic) {
	wd, err := os.Getwd()
	if err != nil {
		return
	}
	for i := range diags {
		if rel, err := filepath.Rel(wd, diags[i].File); err == nil && !strings.HasPrefix(rel, "..") {
			diags[i].File = rel
		}
	}
}

func usage(fs *flag.FlagSet, w *os.File) {
	fmt.Fprintf(w, `usage: trajlint [flags] [packages]

trajlint enforces the repo's correctness contracts with a stdlib-only
analyzer suite. Packages default to ./...; a trailing /... walks
directories (testdata, vendor, and hidden directories are skipped).

Flags:
`)
	fs.PrintDefaults()
	fmt.Fprintf(w, "\nRules:\n")
	var rules []*analysis.Rule
	rules = append(rules, analysis.Rules()...)
	sort.Slice(rules, func(i, j int) bool { return rules[i].Name < rules[j].Name })
	for _, r := range rules {
		fmt.Fprintf(w, "  %-14s %s\n", r.Name, r.Doc)
	}
	fmt.Fprintf(w, `
Fixable rules (mechanical fixes, apply by hand):
`)
	for _, r := range rules {
		if r.Fix != "" {
			fmt.Fprintf(w, "  %-14s %s\n", r.Name, r.Fix)
		}
	}
	fmt.Fprintf(w, `
Suppressions (reason is mandatory; a missing reason or unknown rule is
itself a diagnostic):
  //lint:ignore <rule> <reason>        suppresses <rule> on this line and the next
  //lint:file-ignore <rule> <reason>   suppresses <rule> in the whole file
`)
}
