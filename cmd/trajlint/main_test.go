package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeModule lays out a throwaway module for exit-code tests.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	files["go.mod"] = "module tmpmod\n\ngo 1.22\n"
	for name, src := range files {
		path := filepath.Join(dir, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

func runCLI(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var out, errb bytes.Buffer
	code := run(args, &out, &errb)
	return code, out.String(), errb.String()
}

const dirtySrc = `// Package tmpmod is a CLI-test fixture.
package tmpmod

// Eq compares floats exactly — a seeded violation.
func Eq(x, y float64) bool { return x == y }
`

// TestExitCodeFindings: a surviving diagnostic exits 1, and the finding
// prints in file:line:col form.
func TestExitCodeFindings(t *testing.T) {
	dir := writeModule(t, map[string]string{"eq.go": dirtySrc})
	code, out, errb := runCLI(t, "-C", dir, "-rules", "floatcompare", "./...")
	if code != 1 {
		t.Fatalf("exit = %d, want 1 (findings)\nstdout: %s\nstderr: %s", code, out, errb)
	}
	if !strings.Contains(out, "floatcompare") || !strings.Contains(out, "eq.go:5") {
		t.Errorf("stdout should carry the finding, got: %s", out)
	}
	if !strings.Contains(errb, "1 finding(s)") {
		t.Errorf("stderr should summarize the finding count, got: %s", errb)
	}
}

// TestExitCodeClean: nothing to report exits 0.
func TestExitCodeClean(t *testing.T) {
	dir := writeModule(t, map[string]string{"eq.go": dirtySrc})
	code, out, _ := runCLI(t, "-C", dir, "-rules", "noglobalrand", "./...")
	if code != 0 {
		t.Fatalf("exit = %d, want 0 (clean)\nstdout: %s", code, out)
	}
}

// TestExitCodeInternalErrors: trajlint's own failures — bad flags,
// unknown rules, unloadable packages, missing module — exit 2, never 1,
// so CI can tell "the gate fired" from "the gate is broken".
func TestExitCodeInternalErrors(t *testing.T) {
	dir := writeModule(t, map[string]string{"eq.go": dirtySrc})
	cases := []struct {
		name string
		args []string
	}{
		{"unknown rule", []string{"-C", dir, "-rules", "nosuchrule", "./..."}},
		{"bad flag", []string{"-definitely-not-a-flag"}},
		{"missing package", []string{"-C", dir, "./nope/..."}},
		{"no module", []string{"-C", t.TempDir(), "./..."}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, out, errb := runCLI(t, tc.args...)
			if code != 2 {
				t.Fatalf("exit = %d, want 2\nstdout: %s\nstderr: %s", code, out, errb)
			}
		})
	}
}

// TestJSONOutput: -json emits a machine-readable array on stdout (still
// exit 1 on findings) and an empty array, not null, when clean.
func TestJSONOutput(t *testing.T) {
	dir := writeModule(t, map[string]string{"eq.go": dirtySrc})
	code, out, _ := runCLI(t, "-C", dir, "-rules", "floatcompare", "-json", "./...")
	if code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
	if !strings.Contains(out, `"rule": "floatcompare"`) {
		t.Errorf("JSON output should carry the finding, got: %s", out)
	}
	code, out, _ = runCLI(t, "-C", dir, "-rules", "noglobalrand", "-json", "./...")
	if code != 0 || strings.TrimSpace(out) != "[]" {
		t.Errorf("clean -json run: exit %d, stdout %q; want 0 and []", code, out)
	}
}

// TestFixFlag: -fix applies the mechanical fixes, re-analyzes, and exits
// by what remains; a second run is a no-op.
func TestFixFlag(t *testing.T) {
	dir := writeModule(t, map[string]string{"undoc.go": `package tmpmod

func Exported() int { return 0 }
`})
	code, _, _ := runCLI(t, "-C", dir, "-rules", "exporteddoc", "./...")
	if code != 1 {
		t.Fatalf("pre-fix exit = %d, want 1", code)
	}
	code, out, errb := runCLI(t, "-C", dir, "-rules", "exporteddoc", "-fix", "./...")
	if code != 0 {
		t.Fatalf("-fix exit = %d, want 0 after stubs are inserted\nstdout: %s\nstderr: %s", code, out, errb)
	}
	if !strings.Contains(errb, "applied") {
		t.Errorf("-fix should report what it applied, got: %s", errb)
	}
	data, err := os.ReadFile(filepath.Join(dir, "undoc.go"))
	if err != nil {
		t.Fatal(err)
	}
	fixed := string(data)
	if !strings.Contains(fixed, "// Exported TODO: document.") ||
		!strings.Contains(fixed, "// Package tmpmod TODO: document.") {
		t.Errorf("stub docs missing after -fix:\n%s", fixed)
	}
	code, _, _ = runCLI(t, "-C", dir, "-rules", "exporteddoc", "-fix", "./...")
	if code != 0 {
		t.Fatalf("second -fix exit = %d, want 0 (idempotent)", code)
	}
	data2, err := os.ReadFile(filepath.Join(dir, "undoc.go"))
	if err != nil {
		t.Fatal(err)
	}
	if string(data2) != fixed {
		t.Errorf("second -fix changed the file:\n%s\nvs\n%s", data2, fixed)
	}
}

// TestCacheFlag: warm runs replay from the cache and say so under
// -stats.
func TestCacheFlag(t *testing.T) {
	dir := writeModule(t, map[string]string{"eq.go": dirtySrc})
	cache := t.TempDir()
	_, _, errb := runCLI(t, "-C", dir, "-rules", "floatcompare", "-cache", cache, "-stats", "./...")
	if !strings.Contains(errb, "0 cached") {
		t.Errorf("cold -stats should report 0 cached, got: %s", errb)
	}
	code, out, errb := runCLI(t, "-C", dir, "-rules", "floatcompare", "-cache", cache, "-stats", "./...")
	if code != 1 {
		t.Fatalf("warm exit = %d, want 1 (replayed findings still gate)", code)
	}
	if !strings.Contains(errb, "1 cached") || !strings.Contains(errb, "0 analyzed") {
		t.Errorf("warm -stats should report a full cache hit, got: %s", errb)
	}
	// Replayed findings still count in the per-rule table even though a
	// fully warm run has no timing to report.
	if !strings.Contains(errb, "per-rule stats") || !strings.Contains(errb, "finding(s)") {
		t.Errorf("warm -stats should list per-rule finding counts, got: %s", errb)
	}
	if !strings.Contains(out, "floatcompare") {
		t.Errorf("replayed findings should still print, got: %s", out)
	}
}
